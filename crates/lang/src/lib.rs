//! # lcl-lang
//!
//! A small, dependency-free textual format for LCL problems on oriented
//! grids, plus the normalizing compiler that lowers any definition —
//! radius 1 or higher — to the radius-1 **block normal form** of
//! [`lcl_core::lcl`], the one representation the whole engine stack
//! (synthesis, SAT existence, classification, caching) consumes. The
//! paper's point (§3), echoed by Cruciani et al.'s "It does not matter
//! how you define locally checkable labelings", is that the formalisms
//! are interconvertible; this crate makes arbitrary LCLs arrive as
//! *data*, not code.
//!
//! ## The language
//!
//! ```text
//! # Proper 3-colouring of the oriented grid.
//! problem vertex-3-colouring {
//!   alphabet { c0, c1, c2 }
//!   edges differ
//! }
//! ```
//!
//! A problem declares a named label `alphabet`, an optional checkability
//! `radius` (default 1), and constraint clauses over the `(r+1) × (r+1)`
//! windows of the labelling:
//!
//! * `nodes allow { … }` / `nodes forbid { … }` — label-set sugar;
//! * `horizontal allow (west east) …`, `vertical forbid (south north) …`
//!   — adjacent-pair (edge-set) sugar, wildcards `_` permitted;
//! * `horizontal differ`, `vertical equal`, `edges differ` — uniform
//!   relation sugar (proper colourings in one line);
//! * `allow [ … ]` / `forbid [ … ]` — general rectangular patterns, rows
//!   written north to south and separated by `/`.
//!
//! Every clause *slides*: a `p × q` pattern constrains each placement of
//! that shape inside the window. Comments run from `#` to end of line.
//!
//! ## Compilation
//!
//! [`compile()`](compile()) parses ([`parse`]), checks (span-carrying [`LangError`]s,
//! rendered against the source by [`LangError::render`]), tabulates the
//! allowed windows, and lowers radius `r > 1` to radius 1 by the
//! alphabet-product construction (compiled labels are `r × r` patches of
//! source labels; see [`compile_def`] and DESIGN.md §7). The output
//! [`CompiledLcl`] is canonical — sorted patch alphabet, unused labels
//! pruned — so identical sources yield identical downstream cache keys,
//! and it renders back to source ([`CompiledLcl::to_source`]) for
//! diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod span;

pub use ast::ProblemDef;
pub use compile::{compile, compile_def, CompiledLcl};
pub use parser::parse;
pub use span::{LangError, Span, Spanned};

#[cfg(all(test, feature = "proptests"))]
mod proptests;
