//! The `lcl-lang` recursive-descent parser.
//!
//! ```text
//! program  := "problem" IDENT "{" item* "}"
//! item     := "alphabet" "{" names "}"
//!           | "radius" INT
//!           | "nodes" polarity "{" names "}"
//!           | dir ( polarity pair+ | "differ" | "equal" )
//!           | "edges" ( "differ" | "equal" )
//!           | polarity pattern+
//! names    := IDENT ("," IDENT)* ","?
//! dir      := "horizontal" | "vertical"
//! polarity := "allow" | "forbid"
//! pair     := "(" cell cell ")"
//! pattern  := "[" row ("/" row)* "]"
//! row      := cell+
//! cell     := IDENT | "_"
//! ```
//!
//! Keywords are contextual: they only act as keywords in item-head
//! position, so labels may reuse them freely (label references always sit
//! inside `{…}`, `(…)`, or `[…]` delimiters).

use crate::ast::{
    Cell, ClauseKind, Dir, EdgeScope, Pattern, Polarity, ProblemDef, UniformRelation,
};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::{LangError, Span, Spanned};

/// Parses one problem definition from source text.
pub fn parse(src: &str) -> Result<ProblemDef, LangError> {
    let tokens = lex(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end: Span::new(src.len(), src.len()),
    };
    let def = parser.problem()?;
    if let Some(tok) = parser.peek() {
        return Err(LangError::at(
            tok.span,
            format!(
                "unexpected {} after the closing `}}` of the problem",
                tok.kind.describe()
            ),
        ));
    }
    Ok(def)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// An empty span at end-of-input, for truncated-source errors.
    end: Span,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn here(&self) -> Span {
        self.peek().map_or(self.end, |t| t.span)
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Span, LangError> {
        match self.next() {
            Some(tok) if tok.kind == kind => Ok(tok.span),
            Some(tok) => Err(LangError::at(
                tok.span,
                format!("expected {what}, found {}", tok.kind.describe()),
            )),
            None => Err(LangError::at(self.end, format!("expected {what}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<Spanned<String>, LangError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(name),
                span,
            }) => Ok(Spanned::new(name, span)),
            Some(tok) => Err(LangError::at(
                tok.span,
                format!("expected {what}, found {}", tok.kind.describe()),
            )),
            None => Err(LangError::at(self.end, format!("expected {what}"))),
        }
    }

    fn keyword(&mut self, keyword: &str) -> Result<Span, LangError> {
        let id = self.ident(&format!("keyword `{keyword}`"))?;
        if id.node == keyword {
            Ok(id.span)
        } else {
            Err(LangError::at(
                id.span,
                format!("expected keyword `{keyword}`, found `{}`", id.node),
            ))
        }
    }

    fn problem(&mut self) -> Result<ProblemDef, LangError> {
        self.keyword("problem")?;
        let name = self.ident("a problem name")?;
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut alphabet: Option<Vec<Spanned<String>>> = None;
        let mut radius: Option<Spanned<usize>> = None;
        let mut clauses = Vec::new();
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::RBrace,
                    ..
                }) => {
                    self.next();
                    break;
                }
                Some(_) => {}
                None => {
                    return Err(LangError::at(
                        self.end,
                        "unclosed problem body: expected `}`",
                    ))
                }
            }
            let head = self.ident("an item (`alphabet`, `radius`, `nodes`, `horizontal`, `vertical`, `edges`, `allow`, or `forbid`)")?;
            match head.node.as_str() {
                "alphabet" => {
                    let labels = self.name_set("a label name")?;
                    if alphabet.is_some() {
                        return Err(LangError::at(head.span, "duplicate `alphabet` item"));
                    }
                    alphabet = Some(labels);
                }
                "radius" => {
                    let (value, span) = self.integer("the radius")?;
                    if radius.is_some() {
                        return Err(LangError::at(head.span, "duplicate `radius` item"));
                    }
                    radius = Some(Spanned::new(value, span));
                }
                "nodes" => {
                    let polarity = self.polarity()?;
                    let labels = self.name_set("a label name")?;
                    let span = head.span.to(self.previous_span());
                    clauses.push(Spanned::new(ClauseKind::Nodes { polarity, labels }, span));
                }
                "horizontal" | "vertical" => {
                    let dir = if head.node == "horizontal" {
                        Dir::Horizontal
                    } else {
                        Dir::Vertical
                    };
                    let clause = self.pair_clause(dir)?;
                    let span = head.span.to(self.previous_span());
                    clauses.push(Spanned::new(clause, span));
                }
                "edges" => {
                    let relation = self.uniform_relation()?;
                    let span = head.span.to(self.previous_span());
                    clauses.push(Spanned::new(
                        ClauseKind::Uniform {
                            scope: EdgeScope::Both,
                            relation,
                        },
                        span,
                    ));
                }
                "allow" | "forbid" => {
                    let polarity = if head.node == "allow" {
                        Polarity::Allow
                    } else {
                        Polarity::Forbid
                    };
                    let patterns = self.patterns()?;
                    let span = head.span.to(self.previous_span());
                    clauses.push(Spanned::new(
                        ClauseKind::Patterns { polarity, patterns },
                        span,
                    ));
                }
                other => {
                    return Err(LangError::at(
                        head.span,
                        format!(
                            "unknown item `{other}` (expected `alphabet`, `radius`, `nodes`, \
                             `horizontal`, `vertical`, `edges`, `allow`, or `forbid`)"
                        ),
                    ));
                }
            }
        }
        let alphabet = alphabet.ok_or_else(|| {
            LangError::at(name.span, "the problem declares no `alphabet { … }` item")
        })?;
        Ok(ProblemDef {
            name,
            alphabet,
            radius,
            clauses,
        })
    }

    /// `{` IDENT (`,` IDENT)* `,`? `}` — at least one name required.
    fn name_set(&mut self, what: &str) -> Result<Vec<Spanned<String>>, LangError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut names = vec![self.ident(what)?];
        loop {
            match self.next() {
                Some(Token {
                    kind: TokenKind::RBrace,
                    ..
                }) => return Ok(names),
                Some(Token {
                    kind: TokenKind::Comma,
                    ..
                }) => {
                    // Allow a trailing comma before the closing brace.
                    if matches!(
                        self.peek(),
                        Some(Token {
                            kind: TokenKind::RBrace,
                            ..
                        })
                    ) {
                        self.next();
                        return Ok(names);
                    }
                    names.push(self.ident(what)?);
                }
                Some(tok) => {
                    return Err(LangError::at(
                        tok.span,
                        format!("expected `,` or `}}`, found {}", tok.kind.describe()),
                    ))
                }
                None => return Err(LangError::at(self.end, "unclosed `{ … }` name list")),
            }
        }
    }

    fn previous_span(&self) -> Span {
        self.tokens
            .get(self.pos.wrapping_sub(1))
            .map_or(self.end, |t| t.span)
    }

    fn integer(&mut self, what: &str) -> Result<(usize, Span), LangError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Int(value),
                span,
            }) => Ok((value, span)),
            Some(tok) => Err(LangError::at(
                tok.span,
                format!(
                    "expected an integer for {what}, found {}",
                    tok.kind.describe()
                ),
            )),
            None => Err(LangError::at(
                self.end,
                format!("expected an integer for {what}"),
            )),
        }
    }

    fn polarity(&mut self) -> Result<Polarity, LangError> {
        let id = self.ident("`allow` or `forbid`")?;
        match id.node.as_str() {
            "allow" => Ok(Polarity::Allow),
            "forbid" => Ok(Polarity::Forbid),
            other => Err(LangError::at(
                id.span,
                format!("expected `allow` or `forbid`, found `{other}`"),
            )),
        }
    }

    fn uniform_relation(&mut self) -> Result<UniformRelation, LangError> {
        let id = self.ident("`differ` or `equal`")?;
        match id.node.as_str() {
            "differ" => Ok(UniformRelation::Differ),
            "equal" => Ok(UniformRelation::Equal),
            other => Err(LangError::at(
                id.span,
                format!("expected `differ` or `equal`, found `{other}`"),
            )),
        }
    }

    /// After `horizontal` / `vertical`: either a uniform relation or a
    /// polarity followed by one or more `(cell cell)` pairs.
    fn pair_clause(&mut self, dir: Dir) -> Result<ClauseKind, LangError> {
        let id = self.ident("`allow`, `forbid`, `differ`, or `equal`")?;
        let scope = match dir {
            Dir::Horizontal => EdgeScope::Horizontal,
            Dir::Vertical => EdgeScope::Vertical,
        };
        let polarity = match id.node.as_str() {
            "differ" => {
                return Ok(ClauseKind::Uniform {
                    scope,
                    relation: UniformRelation::Differ,
                })
            }
            "equal" => {
                return Ok(ClauseKind::Uniform {
                    scope,
                    relation: UniformRelation::Equal,
                })
            }
            "allow" => Polarity::Allow,
            "forbid" => Polarity::Forbid,
            other => {
                return Err(LangError::at(
                    id.span,
                    format!("expected `allow`, `forbid`, `differ`, or `equal`, found `{other}`"),
                ))
            }
        };
        let mut pairs = Vec::new();
        while matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::LParen,
                ..
            })
        ) {
            self.next();
            let a = self.cell()?;
            let b = self.cell()?;
            self.expect(TokenKind::RParen, "`)`")?;
            pairs.push([a, b]);
        }
        if pairs.is_empty() {
            return Err(LangError::at(
                self.here(),
                "expected at least one `(a b)` pair",
            ));
        }
        Ok(ClauseKind::Pairs {
            dir,
            polarity,
            pairs,
        })
    }

    fn cell(&mut self) -> Result<Spanned<Cell>, LangError> {
        let id = self.ident("a label name or `_`")?;
        let cell = if id.node == "_" {
            Cell::Wild
        } else {
            Cell::Label(id.node)
        };
        Ok(Spanned::new(cell, id.span))
    }

    fn patterns(&mut self) -> Result<Vec<Spanned<Pattern>>, LangError> {
        let mut patterns = Vec::new();
        while matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::LBracket,
                ..
            })
        ) {
            patterns.push(self.pattern()?);
        }
        if patterns.is_empty() {
            return Err(LangError::at(
                self.here(),
                "expected at least one `[ … ]` pattern",
            ));
        }
        Ok(patterns)
    }

    fn pattern(&mut self) -> Result<Spanned<Pattern>, LangError> {
        let open = self.expect(TokenKind::LBracket, "`[`")?;
        let mut rows: Vec<Vec<Spanned<Cell>>> = vec![Vec::new()];
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::RBracket,
                    ..
                }) => {
                    let close = self.next().expect("peeked").span;
                    let span = open.to(close);
                    let cols = rows[0].len();
                    if rows.iter().any(|r| r.is_empty()) {
                        return Err(LangError::at(span, "pattern has an empty row"));
                    }
                    if rows.iter().any(|r| r.len() != cols) {
                        return Err(LangError::at(
                            span,
                            "pattern rows have different lengths".to_string(),
                        ));
                    }
                    let pattern = Pattern {
                        rows: rows.len(),
                        cols,
                        cells: rows.into_iter().flatten().collect(),
                    };
                    return Ok(Spanned::new(pattern, span));
                }
                Some(Token {
                    kind: TokenKind::Slash,
                    ..
                }) => {
                    self.next();
                    rows.push(Vec::new());
                }
                Some(Token {
                    kind: TokenKind::Ident(_),
                    ..
                }) => {
                    let cell = self.cell()?;
                    rows.last_mut().expect("rows is never empty").push(cell);
                }
                Some(tok) => {
                    return Err(LangError::at(
                        tok.span,
                        format!(
                            "expected a label, `_`, `/`, or `]` in the pattern, found {}",
                            tok.kind.describe()
                        ),
                    ))
                }
                None => return Err(LangError::at(self.end, "unclosed `[ … ]` pattern")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRIPES: &str = "\
problem stripes {
  alphabet { a, b }
  horizontal equal
  vertical differ
}";

    #[test]
    fn parses_sugar_clauses() {
        let def = parse(STRIPES).unwrap();
        assert_eq!(def.name.node, "stripes");
        assert_eq!(def.alphabet.len(), 2);
        assert_eq!(def.radius(), 1);
        assert_eq!(def.clauses.len(), 2);
        assert_eq!(
            def.clauses[0].node,
            ClauseKind::Uniform {
                scope: EdgeScope::Horizontal,
                relation: UniformRelation::Equal
            }
        );
    }

    #[test]
    fn parses_patterns_with_wildcards() {
        let def = parse("problem p { alphabet { x } radius 2 forbid [ x x x / x _ x / x x x ] }")
            .unwrap();
        match &def.clauses[0].node {
            ClauseKind::Patterns { polarity, patterns } => {
                assert_eq!(*polarity, Polarity::Forbid);
                assert_eq!(patterns[0].node.rows, 3);
                assert_eq!(patterns[0].node.cols, 3);
                assert_eq!(*patterns[0].node.cell(1, 1), Cell::Wild);
            }
            other => panic!("unexpected clause {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_to_source() {
        let def = parse(STRIPES).unwrap();
        assert_eq!(parse(&def.to_source()).unwrap(), def);
        let def2 = parse(
            "problem q { alphabet { a, b } radius 2 nodes allow { a } \
             horizontal forbid (a b) (_ a) allow [ a b / b _ ] edges differ }",
        )
        .unwrap();
        assert_eq!(parse(&def2.to_source()).unwrap(), def2);
    }

    #[test]
    fn ragged_pattern_is_an_error() {
        let err = parse("problem p { alphabet { x } allow [ x x / x ] }").unwrap_err();
        assert!(err.message.contains("different lengths"));
        assert!(err.span.is_some());
    }

    #[test]
    fn missing_alphabet_is_an_error_at_the_name() {
        let src = "problem nameless { radius 1 }";
        let err = parse(src).unwrap_err();
        let span = err.span.unwrap();
        assert_eq!(&src[span.start..span.end], "nameless");
    }

    #[test]
    fn unknown_item_is_an_error() {
        let err = parse("problem p { alphabet { x } wibble }").unwrap_err();
        assert!(err.message.contains("unknown item `wibble`"));
    }
}
