//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! §7 of *LCL problems on grids* reports that "finding a proper 4-colouring
//! of the neighbourhood graph can be done with modern SAT solvers in a
//! matter of seconds". This crate is the repository's own such solver: a
//! complete CDCL implementation with two-watched-literal propagation,
//! first-UIP clause learning, VSIDS-style branching with phase saving, and
//! Luby restarts. It is used by the synthesis pipeline (tile realizability
//! and `A′` extraction) and by the per-`n` LCL existence solver.
//!
//! # Example
//!
//! ```
//! use lcl_sat::{Lit, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! let model = s.solve().expect_sat();
//! assert!(!model.value(a));
//! assert!(model.value(b));
//! ```

#![forbid(unsafe_code)]
mod cnf;
pub mod dimacs;
mod solver;

pub use cnf::{at_least_one, at_most_one, exactly_one};
pub use lcl_budget::{Budget, BudgetExceeded, CancelToken};
pub use solver::{Lit, Model, SolveOutcome, Solver, Var};

#[cfg(all(test, feature = "proptests"))]
mod proptests;
