//! DIMACS CNF import/export, for interoperability and debugging.
//!
//! The synthesis pipeline builds CNF programmatically, but a standard
//! serialisation makes instances inspectable with external tools and lets
//! external instances drive the solver.

use crate::{Lit, Solver, Var};
use std::fmt::Write as _;

/// A parse error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a DIMACS CNF document into a fresh solver plus the variable
/// vector (index `i` holds DIMACS variable `i+1`).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input (bad header, literal out
/// of range, unterminated clause).
pub fn parse(input: &str) -> Result<(Solver, Vec<Var>), ParseError> {
    let mut solver = Solver::new();
    let mut vars: Vec<Var> = Vec::new();
    let mut declared: Option<(usize, usize)> = None;
    let mut clause: Vec<Lit> = Vec::new();
    let mut clauses_seen = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseError {
                    line: lineno,
                    message: "expected 'p cnf <vars> <clauses>'".into(),
                });
            }
            let nv: usize =
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError {
                        line: lineno,
                        message: "bad variable count".into(),
                    })?;
            let nc: usize =
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError {
                        line: lineno,
                        message: "bad clause count".into(),
                    })?;
            declared = Some((nv, nc));
            vars = solver.new_vars(nv);
            continue;
        }
        let Some((nv, _)) = declared else {
            return Err(ParseError {
                line: lineno,
                message: "clause before header".into(),
            });
        };
        for tok in line.split_whitespace() {
            let l: i64 = tok.parse().map_err(|_| ParseError {
                line: lineno,
                message: format!("bad literal '{tok}'"),
            })?;
            if l == 0 {
                solver.add_clause(clause.drain(..));
                clauses_seen += 1;
            } else {
                let idx = l.unsigned_abs() as usize;
                if idx > nv {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("literal {l} exceeds declared {nv} variables"),
                    });
                }
                let v = vars[idx - 1];
                clause.push(if l > 0 { Lit::pos(v) } else { Lit::neg(v) });
            }
        }
    }
    if !clause.is_empty() {
        return Err(ParseError {
            line: input.lines().count(),
            message: "unterminated clause (missing trailing 0)".into(),
        });
    }
    let _ = clauses_seen;
    Ok((solver, vars))
}

/// Serialises a clause list as a DIMACS CNF document.
pub fn emit(num_vars: usize, clauses: &[Vec<i64>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for c in clauses {
        for &l in c {
            let _ = write!(out, "{l} ");
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sat() {
        let doc = emit(3, &[vec![1, 2], vec![-1], vec![-2, 3]]);
        let (mut solver, vars) = parse(&doc).unwrap();
        let model = solver.solve().expect_sat();
        assert!(!model.value(vars[0]));
        assert!(model.value(vars[1]));
        assert!(model.value(vars[2]));
    }

    #[test]
    fn parses_comments_and_blanks() {
        let doc = "c a comment\n\np cnf 2 2\nc another\n1 2 0\n-1 -2 0\n";
        let (mut solver, _) = parse(doc).unwrap();
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn multiline_clauses() {
        let doc = "p cnf 2 1\n1\n2 0\n";
        let (mut solver, vars) = parse(doc).unwrap();
        let model = solver.solve().expect_sat();
        assert!(model.value(vars[0]) || model.value(vars[1]));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let err = parse("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unsat_document() {
        let doc = emit(1, &[vec![1], vec![-1]]);
        let (mut solver, _) = parse(&doc).unwrap();
        assert!(!solver.solve().is_sat());
    }
}
