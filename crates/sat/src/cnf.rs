//! Cardinality-constraint helpers for CNF encodings.

use crate::{Lit, Solver};

/// Adds "at least one of `lits`".
pub fn at_least_one(solver: &mut Solver, lits: &[Lit]) {
    solver.add_clause(lits.iter().copied());
}

/// Adds "at most one of `lits`".
///
/// Uses the pairwise encoding below 8 literals and a sequential
/// (ladder) encoding above, which introduces `len − 1` auxiliary
/// variables but only `O(len)` clauses.
pub fn at_most_one(solver: &mut Solver, lits: &[Lit]) {
    if lits.len() < 8 {
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                solver.add_clause([!lits[i], !lits[j]]);
            }
        }
    } else {
        // Sequential encoding: s_i means "some lit among lits[..=i]".
        let s: Vec<Lit> = (0..lits.len() - 1)
            .map(|_| Lit::pos(solver.new_var()))
            .collect();
        solver.add_clause([!lits[0], s[0]]);
        for i in 1..lits.len() - 1 {
            solver.add_clause([!lits[i], s[i]]);
            solver.add_clause([!s[i - 1], s[i]]);
            solver.add_clause([!lits[i], !s[i - 1]]);
        }
        solver.add_clause([!lits[lits.len() - 1], !s[lits.len() - 2]]);
    }
}

/// Adds "exactly one of `lits`".
pub fn exactly_one(solver: &mut Solver, lits: &[Lit]) {
    at_least_one(solver, lits);
    at_most_one(solver, lits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn count_true(model: &crate::Model, vars: &[Var]) -> usize {
        vars.iter().filter(|&&v| model.value(v)).count()
    }

    #[test]
    fn exactly_one_small() {
        let mut s = Solver::new();
        let vars = s.new_vars(5);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        exactly_one(&mut s, &lits);
        let m = s.solve().expect_sat();
        assert_eq!(count_true(&m, &vars), 1);
    }

    #[test]
    fn exactly_one_large_uses_ladder() {
        let mut s = Solver::new();
        let vars = s.new_vars(20);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        exactly_one(&mut s, &lits);
        assert!(s.num_vars() > 20, "ladder encoding allocates aux vars");
        let m = s.solve().expect_sat();
        assert_eq!(count_true(&m, &vars), 1);
    }

    #[test]
    fn at_most_one_allows_zero() {
        let mut s = Solver::new();
        let vars = s.new_vars(10);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        at_most_one(&mut s, &lits);
        // Force all to false: still satisfiable.
        for &v in &vars {
            s.add_clause([Lit::neg(v)]);
        }
        assert!(s.solve().is_sat());
    }

    #[test]
    fn at_most_one_forbids_two_large() {
        let mut s = Solver::new();
        let vars = s.new_vars(12);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        at_most_one(&mut s, &lits);
        s.add_clause([Lit::pos(vars[3])]);
        s.add_clause([Lit::pos(vars[9])]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn at_most_one_forbids_two_small() {
        let mut s = Solver::new();
        let vars = s.new_vars(4);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        at_most_one(&mut s, &lits);
        s.add_clause([Lit::pos(vars[0])]);
        s.add_clause([Lit::pos(vars[2])]);
        assert!(!s.solve().is_sat());
    }
}
