//! The CDCL solver core.

use lcl_budget::{Budget, BudgetExceeded};
use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The literal of `v` with the given polarity (`true` = positive).
    #[inline]
    pub fn with_polarity(v: Var, polarity: bool) -> Lit {
        if polarity {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True iff this is a negative literal.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A satisfying assignment.
#[derive(Clone, Debug)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not a variable of the solved instance.
    pub fn value(&self, v: Var) -> bool {
        self.values[v.index()]
    }

    /// True iff the literal is satisfied.
    pub fn satisfies(&self, l: Lit) -> bool {
        self.value(l.var()) != l.is_neg()
    }
}

/// Outcome of [`Solver::solve`].
#[derive(Clone, Debug)]
pub enum SolveOutcome {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The instance is unsatisfiable.
    Unsat,
}

impl SolveOutcome {
    /// True iff satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveOutcome::Sat(_))
    }

    /// Extracts the model.
    ///
    /// # Panics
    ///
    /// Panics if the instance was unsatisfiable.
    pub fn expect_sat(self) -> Model {
        match self {
            SolveOutcome::Sat(m) => m,
            SolveOutcome::Unsat => panic!("instance is unsatisfiable"),
        }
    }

    /// Extracts the model if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveOutcome::Sat(m) => Some(m),
            SolveOutcome::Unsat => None,
        }
    }
}

const UNASSIGNED: i8 = 0;
const VTRUE: i8 = 1;
const VFALSE: i8 = -1;

type ClauseRef = u32;

/// A CDCL SAT solver. See the crate docs for an example.
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// For each literal, the clauses in which it is watched.
    watches: Vec<Vec<ClauseRef>>,
    /// Assignment: +1 true, −1 false, 0 unassigned (indexed by variable).
    assign: Vec<i8>,
    /// Saved phase for branching (phase saving).
    phase: Vec<bool>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (implied vars only).
    reason: Vec<Option<ClauseRef>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Empty clause was added directly.
    trivially_unsat: bool,
    /// Statistics: conflicts seen.
    conflicts: u64,
    /// Statistics: decisions made.
    decisions: u64,
    /// Statistics: literals propagated.
    propagations: u64,
    /// Statistics: clauses learned from conflict analysis.
    learned: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.num_vars())
            .field("clauses", &self.clauses.len())
            .field("conflicts", &self.conflicts)
            .finish_non_exhaustive()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            trivially_unsat: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            learned: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Conflicts encountered so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Literals propagated so far.
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Clauses learned from conflict analysis so far (unit learnts
    /// included).
    pub fn learned(&self) -> u64 {
        self.learned
    }

    /// The solver's cumulative work counters as a typed cost ledger.
    pub fn cost(&self) -> lcl_trace::SolverCost {
        lcl_trace::SolverCost {
            decisions: self.decisions,
            propagations: self.propagations,
            conflicts: self.conflicts,
            learned: self.learned,
        }
    }

    /// Sets the initial branching phase of a variable (the polarity tried
    /// first). Useful for randomising solutions.
    pub fn set_phase(&mut self, v: Var, polarity: bool) {
        self.phase[v.index()] = polarity;
    }

    /// Adds a clause (an OR of literals). Duplicate literals are merged;
    /// tautological clauses are dropped. Adding an empty clause makes the
    /// instance trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called after solving has begun (clauses must be added at
    /// decision level 0) with an inconsistent internal state, or if a
    /// literal refers to an unallocated variable.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        debug_assert!(self.trail_lim.is_empty(), "add clauses before solving");
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(
                (l.var().index()) < self.assign.len(),
                "literal {l} refers to an unallocated variable"
            );
        }
        lits.sort_by_key(|l| l.0);
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return; // contains l and ¬l
            }
        }
        // Remove literals already false at level 0 and drop clauses already
        // true at level 0.
        lits.retain(|&l| self.lit_value(l) != VFALSE || self.level[l.var().index()] != 0);
        if lits.iter().any(|&l| self.lit_value(l) == VTRUE) {
            return;
        }
        match lits.len() {
            0 => self.trivially_unsat = true,
            1 => {
                if !self.enqueue(lits[0], None) {
                    self.trivially_unsat = true;
                }
            }
            _ => {
                let cref = self.clauses.len() as ClauseRef;
                self.watches[lits[0].index()].push(cref);
                self.watches[lits[1].index()].push(cref);
                self.clauses.push(lits);
            }
        }
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var().index()];
        if l.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Pushes a literal onto the trail; returns false on conflict with the
    /// current assignment.
    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) -> bool {
        match self.lit_value(l) {
            VTRUE => true,
            VFALSE => false,
            _ => {
                let v = l.var().index();
                self.assign[v] = if l.is_neg() { VFALSE } else { VTRUE };
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation. Returns a conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let falsified = !l;
            let mut i = 0;
            // Take the watch list; rebuilt as we scan.
            let mut watch_list = std::mem::take(&mut self.watches[falsified.index()]);
            while i < watch_list.len() {
                let cref = watch_list[i];
                let first;
                let mut new_watch = None;
                {
                    // Field-level borrows: mutate the clause while reading
                    // the assignment.
                    let assign = &self.assign;
                    let value = |l: Lit| {
                        let v = assign[l.var().index()];
                        if l.is_neg() {
                            -v
                        } else {
                            v
                        }
                    };
                    let clause = &mut self.clauses[cref as usize];
                    // Ensure the falsified literal is at position 1.
                    if clause[0] == falsified {
                        clause.swap(0, 1);
                    }
                    debug_assert_eq!(clause[1], falsified);
                    first = clause[0];
                    if value(first) == VTRUE {
                        i += 1;
                        continue; // clause already satisfied
                    }
                    // Look for a new literal to watch.
                    for j in 2..clause.len() {
                        if value(clause[j]) != VFALSE {
                            clause.swap(1, j);
                            new_watch = Some(clause[1]);
                            break;
                        }
                    }
                }
                if let Some(w) = new_watch {
                    self.watches[w.index()].push(cref);
                    watch_list.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore remaining watches and report.
                    self.watches[falsified.index()].extend_from_slice(&watch_list);
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[falsified.index()].extend_from_slice(&watch_list);
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = Some(confl);
        let mut trail_idx = self.trail.len();
        let current_level = self.trail_lim.len() as u32;

        loop {
            let cref = confl.expect("conflict analysis needs a reason clause");
            // Borrow the clause literals by value to appease the borrow
            // checker while bumping activities.
            let clause = self.clauses[cref as usize].clone();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &clause[start..] {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            confl = self.reason[lit.var().index()];
            p = Some(lit);
        }
        learnt[0] = !p.unwrap();

        // Compute backjump level: the second-highest level in the clause.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backjump)
    }

    /// Undoes assignments above `level`.
    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let start = self.trail_lim.pop().unwrap();
            for l in self.trail.drain(start..) {
                let v = l.var().index();
                self.phase[v] = !l.is_neg();
                self.assign[v] = UNASSIGNED;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    /// Picks the unassigned variable with the highest activity.
    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == UNASSIGNED {
                let a = self.activity[v];
                match best {
                    Some((_, ba)) if ba >= a => {}
                    _ => best = Some((v, a)),
                }
            }
        }
        best.map(|(v, _)| Var(v as u32))
    }

    /// Solves the instance.
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_budgeted(&Budget::unlimited())
            .expect("an unlimited budget never trips")
    }

    /// Solves the instance under a cooperative [`Budget`]: one work unit
    /// is charged per unit propagation, and the budget is polled once
    /// per conflict/decision iteration of the CDCL main loop — the
    /// propagation-loop granularity that keeps even a pathological
    /// instance from overrunning a deadline by more than one BCP pass.
    ///
    /// An unlimited budget takes a check-free fast path, so `solve()`
    /// (which delegates here) pays nothing for the hook. On a budget
    /// trip the solver returns early with the partial search state
    /// intact; the instance can be re-solved with a larger budget.
    pub fn solve_budgeted(&mut self, budget: &Budget) -> Result<SolveOutcome, BudgetExceeded> {
        // Trace wrapper: attribute this call's counter deltas to a SAT
        // span and charge them into the thread's pending solver-cost
        // ledger, so the engine's tier walk can bill the work to the
        // tier that caused it. Near-free when tracing is off: the span
        // is one atomic load, the ledger a `Cell` update.
        let before = self.cost();
        let mut span = lcl_trace::span(lcl_trace::SpanKind::Sat, "sat-solve");
        let result = self.run_cdcl(budget);
        let mut delta = self.cost();
        delta.decisions -= before.decisions;
        delta.propagations -= before.propagations;
        delta.conflicts -= before.conflicts;
        delta.learned -= before.learned;
        lcl_trace::charge_solver(delta);
        span.counters(delta.counters());
        result
    }

    /// The CDCL main loop behind [`Solver::solve_budgeted`].
    fn run_cdcl(&mut self, budget: &Budget) -> Result<SolveOutcome, BudgetExceeded> {
        if self.trivially_unsat {
            return Ok(SolveOutcome::Unsat);
        }
        if self.propagate().is_some() {
            return Ok(SolveOutcome::Unsat);
        }
        let unlimited = budget.is_unlimited();
        let mut charged = self.propagations;
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = luby(restart_count) * 64;
        loop {
            if !unlimited {
                // Charge the propagations of the previous iteration (at
                // least one unit, so decision-only iterations count too).
                let delta = (self.propagations - charged).max(1);
                charged = self.propagations;
                budget.charge(delta)?;
            }
            match self.propagate() {
                Some(confl) => {
                    self.conflicts += 1;
                    if self.trail_lim.is_empty() {
                        return Ok(SolveOutcome::Unsat);
                    }
                    let (learnt, backjump) = self.analyze(confl);
                    self.learned += 1;
                    self.backtrack(backjump);
                    let asserting = learnt[0];
                    if learnt.len() == 1 {
                        let ok = self.enqueue(asserting, None);
                        if !ok {
                            return Ok(SolveOutcome::Unsat);
                        }
                    } else {
                        let cref = self.clauses.len() as ClauseRef;
                        self.watches[learnt[0].index()].push(cref);
                        self.watches[learnt[1].index()].push(cref);
                        self.clauses.push(learnt);
                        let ok = self.enqueue(asserting, Some(cref));
                        debug_assert!(ok);
                    }
                    self.var_inc /= 0.95;
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                }
                None => {
                    if conflicts_until_restart == 0 && !self.trail_lim.is_empty() {
                        restart_count += 1;
                        conflicts_until_restart = luby(restart_count) * 64;
                        self.backtrack(0);
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => {
                            let values = self.assign.iter().map(|&a| a == VTRUE).collect();
                            return Ok(SolveOutcome::Sat(Model { values }));
                        }
                        Some(v) => {
                            self.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = Lit::with_polarity(v, self.phase[v.index()]);
                            let ok = self.enqueue(lit, None);
                            debug_assert!(ok);
                        }
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence 1,1,2,1,1,2,4,…
fn luby(i: u64) -> u64 {
    let mut k = 1u32;
    loop {
        if i + 1 == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        if i + 1 < (1 << k) - 1 {
            return luby_at(i - ((1 << (k - 1)) - 1));
        }
        k += 1;
    }
}

fn luby_at(i: u64) -> u64 {
    luby(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, vars: &mut Vec<Var>, i: i32) -> Lit {
        let idx = i.unsigned_abs() as usize;
        while vars.len() < idx {
            vars.push(s.new_var());
        }
        let v = vars[idx - 1];
        if i > 0 {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    fn add(s: &mut Solver, vars: &mut Vec<Var>, clause: &[i32]) {
        let lits: Vec<Lit> = clause.iter().map(|&i| lit(s, vars, i)).collect();
        s.add_clause(lits);
    }

    #[test]
    fn empty_instance_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let mut vars = Vec::new();
        add(&mut s, &mut vars, &[1]);
        add(&mut s, &mut vars, &[-1, 2]);
        add(&mut s, &mut vars, &[-2, 3]);
        let m = s.solve().expect_sat();
        assert!(m.value(vars[0]) && m.value(vars[1]) && m.value(vars[2]));
    }

    #[test]
    fn simple_unsat_chain() {
        let mut s = Solver::new();
        let mut vars = Vec::new();
        add(&mut s, &mut vars, &[1, 2]);
        add(&mut s, &mut vars, &[1, -2]);
        add(&mut s, &mut vars, &[-1, 2]);
        add(&mut s, &mut vars, &[-1, -2]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v), Lit::neg(v)]);
        assert_eq!(s.num_clauses(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // Random-ish structured instance: 3-colouring of a 5-cycle.
        let mut s = Solver::new();
        let n = 5;
        let vars: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(3)).collect();
        for v in &vars {
            s.add_clause(v.iter().map(|&x| Lit::pos(x)));
            for i in 0..3 {
                for j in i + 1..3 {
                    s.add_clause([Lit::neg(v[i]), Lit::neg(v[j])]);
                }
            }
        }
        for u in 0..n {
            let w = (u + 1) % n;
            for (&mine, &theirs) in vars[u].iter().zip(&vars[w]) {
                s.add_clause([Lit::neg(mine), Lit::neg(theirs)]);
            }
        }
        let m = s.solve().expect_sat();
        let colour = |u: usize| (0..3).find(|&c| m.value(vars[u][c])).unwrap();
        for u in 0..n {
            assert_ne!(colour(u), colour((u + 1) % n));
        }
    }

    #[test]
    fn two_colouring_odd_cycle_unsat() {
        let mut s = Solver::new();
        let n = 7;
        let vars = s.new_vars(n);
        for u in 0..n {
            let w = (u + 1) % n;
            s.add_clause([Lit::pos(vars[u]), Lit::pos(vars[w])]);
            s.add_clause([Lit::neg(vars[u]), Lit::neg(vars[w])]);
        }
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        // PHP(4,3): classic hard-ish UNSAT instance.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..4).map(|_| s.new_vars(3)).collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().map(|&v| Lit::pos(v)));
        }
        for hole in 0..3 {
            for (i, pi) in p.iter().enumerate() {
                for pj in &p[i + 1..] {
                    s.add_clause([Lit::neg(pi[hole]), Lit::neg(pj[hole])]);
                }
            }
        }
        assert!(!s.solve().is_sat());
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn phase_steers_solutions() {
        let mut s = Solver::new();
        let v = s.new_var();
        let w = s.new_var();
        s.add_clause([Lit::pos(v), Lit::pos(w)]);
        s.set_phase(v, true);
        s.set_phase(w, false);
        let m = s.solve().expect_sat();
        assert!(m.value(v));
    }

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let mut vars = Vec::new();
        add(&mut s, &mut vars, &[1, 2, 3]);
        add(&mut s, &mut vars, &[-1, -2]);
        add(&mut s, &mut vars, &[-1, -3]);
        add(&mut s, &mut vars, &[-2, -3]);
        let _ = s.solve();
        assert!(s.decisions() + s.propagations() > 0);
    }
}
