//! Property tests: the CDCL solver agrees with brute force on small random
//! instances, and its models satisfy the input formula.

use crate::{Lit, SolveOutcome, Solver, Var};
use proptest::prelude::*;

/// A small random CNF: up to 8 variables, up to 24 clauses of 1–4 literals.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (2usize..=8).prop_flat_map(|nvars| {
        let clause = proptest::collection::vec(
            (1..=nvars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            1..=4,
        );
        (Just(nvars), proptest::collection::vec(clause, 0..24))
    })
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<i32>]) -> bool {
    'outer: for mask in 0u32..(1 << nvars) {
        for clause in clauses {
            let ok = clause.iter().any(|&l| {
                let v = l.unsigned_abs() as usize - 1;
                let val = mask >> v & 1 == 1;
                (l > 0) == val
            });
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn build_solver(nvars: usize, clauses: &[Vec<i32>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars = s.new_vars(nvars);
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| {
                let v = vars[l.unsigned_abs() as usize - 1];
                if l > 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        s.add_clause(lits);
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_matches_brute_force((nvars, clauses) in cnf_strategy()) {
        let expected = brute_force_sat(nvars, &clauses);
        let (mut s, _) = build_solver(nvars, &clauses);
        prop_assert_eq!(s.solve().is_sat(), expected);
    }

    #[test]
    fn models_satisfy_formula((nvars, clauses) in cnf_strategy()) {
        let (mut s, vars) = build_solver(nvars, &clauses);
        if let SolveOutcome::Sat(model) = s.solve() {
            for clause in &clauses {
                let ok = clause.iter().any(|&l| {
                    let val = model.value(vars[l.unsigned_abs() as usize - 1]);
                    (l > 0) == val
                });
                prop_assert!(ok, "model violates clause {:?}", clause);
            }
        }
    }
}
