//! Execution tables: the space-time diagram embedded by `L_M` (§6).

use crate::machine::{State, Sym};
use std::fmt;

/// One row of an execution table: the tape before step `j`, plus the head
/// position and machine state at that time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRow {
    /// Tape contents (cell 0 first).
    pub cells: Vec<Sym>,
    /// Head position.
    pub head: usize,
    /// Machine state.
    pub state: State,
}

/// The complete execution table `E(M)` of a halting run: row `j` encodes
/// the configuration before step `j`; the last row is the halting
/// configuration. §6 embeds this table into an `(s+1) × r` rectangle of
/// grid labels with the anchor at the bottom-left corner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionTable {
    rows: Vec<TableRow>,
    width: usize,
}

impl ExecutionTable {
    /// Wraps raw rows, padding bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn new(rows: Vec<TableRow>) -> ExecutionTable {
        assert!(!rows.is_empty());
        let width = rows.iter().map(|r| r.cells.len()).max().unwrap_or(1);
        ExecutionTable { rows, width }
    }

    /// Number of steps `s` taken (rows − 1).
    pub fn steps(&self) -> usize {
        self.rows.len() - 1
    }

    /// All rows, first configuration first.
    pub fn rows(&self) -> &[TableRow] {
        &self.rows
    }

    /// Width `r` of the table: the number of tape cells ever touched.
    /// Always `≤ steps + 1`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the table (`steps + 1`).
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// The symbol in column `col` before step `row`, blank-padded.
    pub fn symbol(&self, row: usize, col: usize) -> Sym {
        self.rows[row].cells.get(col).copied().unwrap_or(Sym::BLANK)
    }

    /// The machine state at `(row, col)` if the head is there.
    pub fn head_state(&self, row: usize, col: usize) -> Option<State> {
        let r = &self.rows[row];
        (r.head == col).then_some(r.state)
    }
}

impl fmt::Display for ExecutionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print top row last so time flows upward, like the grid embedding.
        for (j, _row) in self.rows.iter().enumerate().rev() {
            write!(f, "t={j:<3} ")?;
            for col in 0..self.width {
                let sym = self.symbol(j, col);
                match self.head_state(j, col) {
                    Some(s) => write!(f, "[{}q{}]", sym, s.0)?,
                    None => write!(f, " {sym}  ")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn table_dimensions_bound() {
        let t = machines::unary_counter(5).run(100).expect_halted();
        assert!(t.width() <= t.steps() + 1, "r ≤ s + 1 (§6)");
        assert_eq!(t.height(), t.steps() + 1);
    }

    #[test]
    fn first_row_is_empty_tape() {
        let t = machines::unary_counter(3).run(100).expect_halted();
        let first = &t.rows()[0];
        assert!(first.cells.iter().all(|&s| s == Sym::BLANK));
        assert_eq!(first.head, 0);
    }

    #[test]
    fn symbol_is_blank_padded() {
        let t = machines::unary_counter(3).run(100).expect_halted();
        assert_eq!(t.symbol(0, 100), Sym::BLANK);
    }

    #[test]
    fn display_contains_head_marker() {
        let t = machines::unary_counter(2).run(100).expect_halted();
        let s = t.to_string();
        assert!(s.contains('q'), "head state must be rendered: {s}");
    }
}
