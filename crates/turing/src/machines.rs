//! A library of example machines for the `L_M` experiments (§6).
//!
//! All machines run on a right-infinite tape and never move left of
//! cell 0, matching the geometry of the execution-table embedding.

use crate::machine::{Move, State, Sym, Transition, TuringMachine};

/// A machine that writes `k` ones moving right, then halts. Halts after
/// exactly `k + 1` steps with a table of width `k + 1`.
///
/// # Panics
///
/// Panics if `k > 120` (state space is `u8`-sized).
pub fn unary_counter(k: u8) -> TuringMachine {
    assert!(k <= 120);
    let mut m = TuringMachine::new(&format!("unary-counter({k})"), k + 2, 2, State(0));
    for i in 0..k {
        m.add_transition(
            State(i),
            Sym::BLANK,
            Transition {
                write: Sym(1),
                mv: Move::Right,
                next: State(i + 1),
            },
        );
    }
    // Final step into the halting state.
    m.add_transition(
        State(k),
        Sym::BLANK,
        Transition {
            write: Sym(1),
            mv: Move::Right,
            next: State(k + 1),
        },
    );
    m.mark_halting(State(k + 1));
    m
}

/// A machine whose head bounces `b` times between two walls `w` cells
/// apart — its execution table contains both left- and right-moving head
/// trajectories, exercising every signal direction of the `L_M` tile
/// encoding. Halts after `Θ(w·b)` steps and never moves left of cell 0.
///
/// Tape symbols: 0 blank, 1 track, 2 right wall, 3 left wall.
///
/// # Panics
///
/// Panics if `w < 2`, or the state space (`w + 2b + 3`) exceeds `u8`.
pub fn bouncer(w: u8, b: u8) -> TuringMachine {
    assert!(w >= 2);
    let num_states = w as usize + 2 * b as usize + 3;
    assert!(num_states <= 255, "state space too large");
    // State layout: 0 = init (write left wall); 1..w = lay track;
    // then alternating sweep-left/sweep-right states; final halting state.
    let lay = |i: u8| State(1 + i);
    let sweep_l = |i: u8| State(w + 1 + 2 * i);
    let sweep_r = |i: u8| State(w + 2 + 2 * i);
    let halt = State(w + 2 * b + 2);
    let mut m = TuringMachine::new(&format!("bouncer({w},{b})"), num_states as u8, 4, State(0));
    // Init: write the left wall at cell 0, move right.
    m.add_transition(
        State(0),
        Sym::BLANK,
        Transition {
            write: Sym(3),
            mv: Move::Right,
            next: lay(0),
        },
    );
    // Lay w−1 track cells, then the right wall, and start sweeping left.
    for i in 0..w - 1 {
        m.add_transition(
            lay(i),
            Sym::BLANK,
            Transition {
                write: Sym(1),
                mv: Move::Right,
                next: lay(i + 1),
            },
        );
    }
    m.add_transition(
        lay(w - 1),
        Sym::BLANK,
        Transition {
            write: Sym(2),
            mv: Move::Left,
            next: if b == 0 { halt } else { sweep_l(0) },
        },
    );
    for i in 0..b {
        // Sweep left over track; bounce off the left wall.
        m.add_transition(
            sweep_l(i),
            Sym(1),
            Transition {
                write: Sym(1),
                mv: Move::Left,
                next: sweep_l(i),
            },
        );
        m.add_transition(
            sweep_l(i),
            Sym(3),
            Transition {
                write: Sym(3),
                mv: Move::Right,
                next: sweep_r(i),
            },
        );
        // Sweep right over track; bounce off the right wall (or halt).
        m.add_transition(
            sweep_r(i),
            Sym(1),
            Transition {
                write: Sym(1),
                mv: Move::Right,
                next: sweep_r(i),
            },
        );
        m.add_transition(
            sweep_r(i),
            Sym(2),
            Transition {
                write: Sym(2),
                mv: Move::Left,
                next: if i + 1 == b { halt } else { sweep_l(i + 1) },
            },
        );
    }
    m.mark_halting(halt);
    m
}

/// A machine that never halts: it walks right forever over blanks.
pub fn loop_forever() -> TuringMachine {
    let mut m = TuringMachine::new("loop-forever", 1, 2, State(0));
    m.add_transition(
        State(0),
        Sym::BLANK,
        Transition {
            write: Sym(1),
            mv: Move::Right,
            next: State(0),
        },
    );
    m
}

/// A machine that writes an alternating pattern for `k` steps and halts;
/// distinct from [`unary_counter`] in that it uses two non-blank symbols,
/// exercising wider tile alphabets in `L_M`.
///
/// # Panics
///
/// Panics if `k > 120`.
pub fn striped_counter(k: u8) -> TuringMachine {
    assert!(k <= 120);
    let mut m = TuringMachine::new(&format!("striped-counter({k})"), k + 2, 3, State(0));
    for i in 0..=k {
        m.add_transition(
            State(i),
            Sym::BLANK,
            Transition {
                write: Sym(1 + (i % 2)),
                mv: Move::Right,
                next: State(i + 1),
            },
        );
    }
    m.mark_halting(State(k + 1));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunOutcome;

    #[test]
    fn unary_counter_halts_precisely() {
        for k in [0u8, 1, 3, 7] {
            let t = unary_counter(k).run(1_000).expect_halted();
            assert_eq!(t.steps(), k as usize + 1);
            assert_eq!(t.width(), k as usize + 2);
        }
    }

    #[test]
    fn unary_counter_writes_ones() {
        let t = unary_counter(3).run(100).expect_halted();
        let last = t.rows().last().unwrap();
        assert_eq!(
            last.cells.iter().filter(|&&s| s == Sym(1)).count(),
            4,
            "four ones written"
        );
    }

    #[test]
    fn loop_forever_never_halts() {
        assert!(matches!(loop_forever().run(10_000), RunOutcome::OutOfFuel));
    }

    #[test]
    fn bouncer_halts_and_moves_both_ways() {
        let t = bouncer(4, 2).run(10_000).expect_halted();
        // Head positions must both increase and decrease over time.
        let heads: Vec<usize> = t.rows().iter().map(|r| r.head).collect();
        assert!(heads.windows(2).any(|w| w[1] > w[0]));
        assert!(heads.windows(2).any(|w| w[1] < w[0]));
        assert!(t.steps() >= 4 * 2);
    }

    #[test]
    fn bouncer_never_falls_off() {
        for w in 2..6 {
            for b in 0..4 {
                assert!(bouncer(w, b).run(100_000).halted(), "w={w} b={b}");
            }
        }
    }

    #[test]
    fn striped_counter_alternates() {
        let t = striped_counter(4).run(100).expect_halted();
        let last = t.rows().last().unwrap();
        assert_eq!(last.cells[0], Sym(1));
        assert_eq!(last.cells[1], Sym(2));
        assert_eq!(last.cells[2], Sym(1));
    }
}
