//! Deterministic Turing machines for the undecidability construction (§6).
//!
//! The LCL problem `L_M` of Theorem 3 embeds the *execution table* of a
//! Turing machine `M`, started on an empty tape, into the labels of a
//! toroidal grid: row `j` of the table encodes the tape before step `j`,
//! and every 2×2 window must be consistent with `M`'s transition rules.
//! This crate provides the machines themselves: a deterministic single-tape
//! model on a semi-infinite tape (the head may never move left of cell 0,
//! matching the geometry of the encoding, which grows north-east from an
//! anchor), execution tables, and a small library of example machines.
//!
//! # Example
//!
//! ```
//! use lcl_turing::{machines, RunOutcome};
//! let m = machines::unary_counter(4);
//! match m.run(1_000) {
//!     RunOutcome::Halted(table) => assert_eq!(table.steps(), 5),
//!     RunOutcome::OutOfFuel => panic!("should halt"),
//!     RunOutcome::FellOffTape => panic!("stays on tape"),
//! }
//! ```

#![forbid(unsafe_code)]
mod machine;
pub mod machines;
mod table;

pub use machine::{Move, RunOutcome, State, Sym, Transition, TuringMachine};
pub use table::{ExecutionTable, TableRow};

#[cfg(all(test, feature = "proptests"))]
mod proptests;
