//! Property tests for the Turing machine substrate.

use crate::{machines, Sym};
use proptest::prelude::*;

proptest! {
    #[test]
    fn unary_counter_table_shape(k in 0u8..50) {
        let t = machines::unary_counter(k).run(10_000).expect_halted();
        prop_assert_eq!(t.steps(), k as usize + 1);
        prop_assert!(t.width() <= t.steps() + 1);
        // Head column equals the row index (pure right-mover).
        for (j, row) in t.rows().iter().enumerate() {
            prop_assert_eq!(row.head, j);
        }
    }

    #[test]
    fn bouncer_tables_are_consistent(w in 2u8..10, b in 0u8..6) {
        let t = machines::bouncer(w, b).run(100_000).expect_halted();
        // Successive head positions differ by exactly 1.
        for rows in t.rows().windows(2) {
            let d = rows[0].head.abs_diff(rows[1].head);
            prop_assert_eq!(d, 1);
        }
        // Cells not under the head never change between consecutive rows.
        for rows in t.rows().windows(2) {
            let width = rows[0].cells.len().max(rows[1].cells.len());
            for c in 0..width {
                if c != rows[0].head {
                    let before = rows[0].cells.get(c).copied().unwrap_or(Sym::BLANK);
                    let after = rows[1].cells.get(c).copied().unwrap_or(Sym::BLANK);
                    prop_assert_eq!(before, after, "cell {} changed away from head", c);
                }
            }
        }
    }

    #[test]
    fn striped_counter_is_deterministic(k in 0u8..40) {
        let a = machines::striped_counter(k).run(10_000).expect_halted();
        let b = machines::striped_counter(k).run(10_000).expect_halted();
        prop_assert_eq!(a, b);
    }
}
