//! The deterministic single-tape Turing machine model.

use crate::table::{ExecutionTable, TableRow};
use std::collections::BTreeMap;
use std::fmt;

/// A machine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State(pub u8);

/// A tape symbol. Symbol 0 is always the blank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u8);

impl Sym {
    /// The blank symbol.
    pub const BLANK: Sym = Sym(0);
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Sym::BLANK {
            f.write_str("·")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Head movement. The tape is semi-infinite to the right; a `Left` move at
/// cell 0 is a run-time error ([`RunOutcome::FellOffTape`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// One cell towards cell 0.
    Left,
    /// One cell away from cell 0.
    Right,
}

/// One transition: on (state, read symbol) → write, move, next state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Symbol written before moving.
    pub write: Sym,
    /// Head movement.
    pub mv: Move,
    /// Next state.
    pub next: State,
}

/// Outcome of running a machine with a step budget.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The machine halted; the complete execution table is attached.
    Halted(ExecutionTable),
    /// The step budget was exhausted without halting.
    OutOfFuel,
    /// The head attempted to move left of cell 0.
    FellOffTape,
}

impl RunOutcome {
    /// Extracts the execution table of a halting run.
    ///
    /// # Panics
    ///
    /// Panics if the machine did not halt.
    pub fn expect_halted(self) -> ExecutionTable {
        match self {
            RunOutcome::Halted(t) => t,
            RunOutcome::OutOfFuel => panic!("machine ran out of fuel"),
            RunOutcome::FellOffTape => panic!("machine fell off the tape"),
        }
    }

    /// True iff the machine halted within the budget.
    pub fn halted(&self) -> bool {
        matches!(self, RunOutcome::Halted(_))
    }
}

/// A deterministic single-tape Turing machine on a right-infinite tape.
///
/// States without an outgoing transition for the read symbol are *halting
/// configurations*; states listed in `halting` are terminal regardless of
/// the symbol. The machine always starts in `start` at cell 0 on an empty
/// (all-blank) tape — exactly the setup of §6.
#[derive(Clone, Debug)]
pub struct TuringMachine {
    name: String,
    num_states: u8,
    num_symbols: u8,
    start: State,
    halting: Vec<State>,
    delta: BTreeMap<(State, Sym), Transition>,
}

impl TuringMachine {
    /// Creates a machine skeleton with the given state/symbol counts.
    ///
    /// # Panics
    ///
    /// Panics if counts are zero or the start state is out of range.
    pub fn new(name: &str, num_states: u8, num_symbols: u8, start: State) -> TuringMachine {
        assert!(num_states > 0 && num_symbols > 0);
        assert!(start.0 < num_states);
        TuringMachine {
            name: name.to_string(),
            num_states,
            num_symbols,
            start,
            halting: Vec::new(),
            delta: BTreeMap::new(),
        }
    }

    /// Human-readable machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn num_states(&self) -> u8 {
        self.num_states
    }

    /// Number of tape symbols (including the blank).
    pub fn num_symbols(&self) -> u8 {
        self.num_symbols
    }

    /// The start state.
    pub fn start(&self) -> State {
        self.start
    }

    /// Marks a state as halting.
    ///
    /// # Panics
    ///
    /// Panics if the state is out of range.
    pub fn mark_halting(&mut self, s: State) {
        assert!(s.0 < self.num_states);
        if !self.halting.contains(&s) {
            self.halting.push(s);
        }
    }

    /// True iff `s` is a declared halting state.
    pub fn is_halting(&self, s: State) -> bool {
        self.halting.contains(&s)
    }

    /// Adds the transition `(state, read) → t`.
    ///
    /// # Panics
    ///
    /// Panics if any component is out of range, if the state is halting,
    /// or if the transition is already defined.
    pub fn add_transition(&mut self, state: State, read: Sym, t: Transition) {
        assert!(state.0 < self.num_states && t.next.0 < self.num_states);
        assert!(read.0 < self.num_symbols && t.write.0 < self.num_symbols);
        assert!(
            !self.is_halting(state),
            "halting states have no transitions"
        );
        let prev = self.delta.insert((state, read), t);
        assert!(
            prev.is_none(),
            "duplicate transition for {state:?}/{read:?}"
        );
    }

    /// Looks up the transition for (state, read), if any.
    pub fn transition(&self, state: State, read: Sym) -> Option<Transition> {
        if self.is_halting(state) {
            None
        } else {
            self.delta.get(&(state, read)).copied()
        }
    }

    /// All defined transitions.
    pub fn transitions(&self) -> impl Iterator<Item = (State, Sym, Transition)> + '_ {
        self.delta.iter().map(|(&(s, r), &t)| (s, r, t))
    }

    /// Runs the machine from the start configuration on an empty tape for
    /// at most `fuel` steps, recording the execution table.
    pub fn run(&self, fuel: usize) -> RunOutcome {
        let mut tape: Vec<Sym> = vec![Sym::BLANK];
        let mut head = 0usize;
        let mut state = self.start;
        let mut rows: Vec<TableRow> = vec![TableRow {
            cells: tape.clone(),
            head,
            state,
        }];
        for _ in 0..fuel {
            let read = tape[head];
            let Some(t) = self.transition(state, read) else {
                // Halting configuration reached.
                return RunOutcome::Halted(ExecutionTable::new(rows));
            };
            tape[head] = t.write;
            match t.mv {
                Move::Left => {
                    if head == 0 {
                        return RunOutcome::FellOffTape;
                    }
                    head -= 1;
                }
                Move::Right => {
                    head += 1;
                    if head == tape.len() {
                        tape.push(Sym::BLANK);
                    }
                }
            }
            state = t.next;
            rows.push(TableRow {
                cells: tape.clone(),
                head,
                state,
            });
            if self.transition(state, tape[head]).is_none() {
                return RunOutcome::Halted(ExecutionTable::new(rows));
            }
        }
        RunOutcome::OutOfFuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-state machine that immediately halts (no transitions).
    fn trivial() -> TuringMachine {
        TuringMachine::new("trivial", 1, 1, State(0))
    }

    #[test]
    fn trivial_machine_halts_in_zero_steps() {
        let t = trivial().run(10).expect_halted();
        assert_eq!(t.steps(), 0);
        assert_eq!(t.rows().len(), 1);
    }

    #[test]
    fn right_mover_runs_out_of_fuel() {
        let mut m = TuringMachine::new("right", 1, 2, State(0));
        m.add_transition(
            State(0),
            Sym::BLANK,
            Transition {
                write: Sym(1),
                mv: Move::Right,
                next: State(0),
            },
        );
        assert!(matches!(m.run(100), RunOutcome::OutOfFuel));
    }

    #[test]
    fn left_from_zero_falls_off() {
        let mut m = TuringMachine::new("lefty", 1, 2, State(0));
        m.add_transition(
            State(0),
            Sym::BLANK,
            Transition {
                write: Sym(1),
                mv: Move::Left,
                next: State(0),
            },
        );
        assert!(matches!(m.run(10), RunOutcome::FellOffTape));
    }

    #[test]
    #[should_panic(expected = "duplicate transition")]
    fn duplicate_transitions_rejected() {
        let mut m = TuringMachine::new("dup", 1, 2, State(0));
        let t = Transition {
            write: Sym(1),
            mv: Move::Right,
            next: State(0),
        };
        m.add_transition(State(0), Sym::BLANK, t);
        m.add_transition(State(0), Sym::BLANK, t);
    }

    #[test]
    fn halting_state_ends_run_even_with_symbols() {
        let mut m = TuringMachine::new("two-step", 2, 2, State(0));
        m.add_transition(
            State(0),
            Sym::BLANK,
            Transition {
                write: Sym(1),
                mv: Move::Right,
                next: State(1),
            },
        );
        m.mark_halting(State(1));
        let t = m.run(10).expect_halted();
        assert_eq!(t.steps(), 1);
        assert_eq!(t.rows()[1].state, State(1));
    }
}
