//! Grid instances and the functional (view-based) face of the LOCAL model.

use crate::IdAssignment;
use lcl_grid::{Pos, PosD, Torus2, TorusD};

/// A concrete problem instance: an oriented toroidal grid together with a
/// unique-identifier assignment.
///
/// # Example
///
/// ```
/// use lcl_local::{GridInstance, IdAssignment};
/// let inst = GridInstance::new(8, &IdAssignment::Sequential);
/// assert_eq!(inst.torus().node_count(), 64);
/// assert_eq!(inst.id(lcl_grid::Pos::new(0, 0)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GridInstance {
    torus: Torus2,
    ids: Vec<u64>,
}

impl GridInstance {
    /// Creates an `n × n` instance with the given identifier assignment.
    pub fn new(n: usize, ids: &IdAssignment) -> GridInstance {
        let torus = Torus2::square(n);
        GridInstance {
            torus,
            ids: ids.materialise(torus.node_count()),
        }
    }

    /// Creates an instance from an explicit identifier vector.
    ///
    /// # Panics
    ///
    /// Panics if the identifier vector has the wrong length or contains
    /// duplicates.
    pub fn from_ids(torus: Torus2, ids: Vec<u64>) -> GridInstance {
        assert_eq!(ids.len(), torus.node_count(), "wrong number of identifiers");
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "identifiers must be unique");
        GridInstance { torus, ids }
    }

    /// The underlying torus.
    pub fn torus(&self) -> Torus2 {
        self.torus
    }

    /// Side length `n` of the square torus.
    pub fn n(&self) -> usize {
        self.torus.side()
    }

    /// Identifier of the node at `p`.
    #[inline]
    pub fn id(&self, p: Pos) -> u64 {
        self.ids[self.torus.index(p)]
    }

    /// All identifiers in node-index order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The radius-`radius` view of the node at `center`.
    pub fn view(&self, center: Pos, radius: usize) -> GridView<'_> {
        GridView::from_parts(self.torus, &self.ids, center, radius, self.n())
    }
}

/// A concrete problem instance on a d-dimensional torus: a [`TorusD`]
/// together with a unique-identifier assignment. The d-dimensional
/// counterpart of [`GridInstance`]; node order is the torus's dense index
/// order, which for `d = 2` coincides with [`Torus2`]'s row-major order,
/// so a 2-dimensional `TorusDInstance` lowers to a byte-identical
/// [`GridInstance`] via [`TorusDInstance::to_grid_instance`].
///
/// # Example
///
/// ```
/// use lcl_local::{IdAssignment, TorusDInstance};
/// let inst = TorusDInstance::new(3, 4, &IdAssignment::Shuffled { seed: 1 });
/// assert_eq!(inst.torus().node_count(), 64);
/// assert_eq!(inst.dim(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct TorusDInstance {
    torus: TorusD,
    ids: Vec<u64>,
}

impl TorusDInstance {
    /// Creates a `d`-dimensional side-`n` instance with the given
    /// identifier assignment.
    pub fn new(dim: usize, side: usize, ids: &IdAssignment) -> TorusDInstance {
        let torus = TorusD::new(dim, side);
        let ids = ids.materialise(torus.node_count());
        TorusDInstance { torus, ids }
    }

    /// Creates an instance from an explicit identifier vector.
    ///
    /// # Panics
    ///
    /// Panics if the identifier vector has the wrong length or contains
    /// duplicates.
    pub fn from_ids(torus: TorusD, ids: Vec<u64>) -> TorusDInstance {
        assert_eq!(ids.len(), torus.node_count(), "wrong number of identifiers");
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "identifiers must be unique");
        TorusDInstance { torus, ids }
    }

    /// The underlying torus.
    pub fn torus(&self) -> &TorusD {
        &self.torus
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.torus.dim()
    }

    /// Side length `n`.
    pub fn side(&self) -> usize {
        self.torus.side()
    }

    /// Identifier of the node at `p`.
    #[inline]
    pub fn id(&self, p: &PosD) -> u64 {
        self.ids[self.torus.index(p)]
    }

    /// All identifiers in node-index order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Lowers a 2-dimensional instance to the equivalent [`GridInstance`]:
    /// same node order, same identifiers, same labelling semantics
    /// (`TorusD::index` of `[x, y]` equals `Torus2::index` of `(x, y)`).
    ///
    /// # Panics
    ///
    /// Panics if `d != 2`.
    pub fn to_grid_instance(&self) -> GridInstance {
        assert_eq!(self.dim(), 2, "only 2-dimensional instances lower");
        GridInstance {
            torus: Torus2::square(self.side()),
            ids: self.ids.clone(),
        }
    }
}

/// The radius-`t` neighbourhood of one node: everything a time-`t` LOCAL
/// algorithm may depend on (§3). On an oriented torus this is the window of
/// identifiers within graph (L1) distance `t`, addressed by oriented
/// offsets; nodes do *not* learn their global coordinates.
///
/// A view carries a *claimed* instance size `n`, which normally equals the
/// true torus side — but the speed-up simulation of Theorem 2 deliberately
/// lies about it, presenting a large grid with locally unique identifiers
/// as a small one. Views are constructed either by
/// [`GridInstance::view`] or from raw parts via [`GridView::from_parts`].
#[derive(Clone, Copy, Debug)]
pub struct GridView<'a> {
    torus: Torus2,
    ids: &'a [u64],
    center: Pos,
    radius: usize,
    claimed_n: usize,
}

impl<'a> GridView<'a> {
    /// Builds a view from raw parts. `ids` indexes the torus densely and
    /// need not be globally unique (the speed-up simulation reuses local
    /// coordinates as identifiers).
    ///
    /// # Panics
    ///
    /// Panics if `ids.len()` does not match the torus node count.
    pub fn from_parts(
        torus: Torus2,
        ids: &'a [u64],
        center: Pos,
        radius: usize,
        claimed_n: usize,
    ) -> GridView<'a> {
        assert_eq!(ids.len(), torus.node_count());
        GridView {
            torus,
            ids,
            center,
            radius,
            claimed_n,
        }
    }

    /// The view radius `t`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// The instance size the algorithm was told (given to all nodes as
    /// input, per §3).
    pub fn n(&self) -> usize {
        self.claimed_n
    }

    /// Identifier of the node at oriented offset `(dx, dy)` from the centre.
    ///
    /// # Panics
    ///
    /// Panics if `|dx| + |dy| > t`: a time-`t` algorithm cannot see farther.
    #[inline]
    pub fn id_at(&self, dx: i64, dy: i64) -> u64 {
        assert!(
            dx.unsigned_abs() as usize + dy.unsigned_abs() as usize <= self.radius,
            "offset ({dx},{dy}) outside radius-{} view",
            self.radius
        );
        self.ids[self.torus.index(self.torus.offset(self.center, dx, dy))]
    }

    /// Identifier of the centre node.
    #[inline]
    pub fn my_id(&self) -> u64 {
        self.ids[self.torus.index(self.center)]
    }

    /// A derived view re-centred at offset `(dx, dy)` with a smaller radius,
    /// for compositional simulations.
    ///
    /// # Panics
    ///
    /// Panics if the derived view would see outside this view, i.e. if
    /// `|dx| + |dy| + sub_radius > t`.
    pub fn recentre(&self, dx: i64, dy: i64, sub_radius: usize) -> GridView<'a> {
        let used = dx.unsigned_abs() as usize + dy.unsigned_abs() as usize;
        assert!(
            used + sub_radius <= self.radius,
            "recentred view exceeds parent radius"
        );
        GridView {
            torus: self.torus,
            ids: self.ids,
            center: self.torus.offset(self.center, dx, dy),
            radius: sub_radius,
            claimed_n: self.claimed_n,
        }
    }
}

/// A deterministic LOCAL algorithm on oriented grids in functional form: a
/// running time `T(n)` plus a mapping from radius-`T(n)` views to outputs.
///
/// This is the exact object Theorem 2 (speed-up) quantifies over. Labels
/// are `u32`s whose meaning is fixed by the LCL problem being solved.
pub trait GridAlgorithm {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Running time `T(n)` on `n × n` instances.
    fn time(&self, n: usize) -> usize;

    /// Local output of the node at the centre of `view`.
    ///
    /// Must depend only on the content of the view (identifiers within the
    /// radius and the value of `n`).
    fn evaluate(&self, view: &GridView<'_>) -> u32;

    /// Runs the algorithm on a whole instance, returning one label per node
    /// in node-index order.
    fn run(&self, instance: &GridInstance) -> Vec<u32> {
        let t = self.time(instance.n());
        let torus = instance.torus();
        (0..torus.node_count())
            .map(|v| self.evaluate(&instance.view(torus.pos(v), t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdAssignment;

    struct ParityOfMax {
        radius: usize,
    }

    impl GridAlgorithm for ParityOfMax {
        fn name(&self) -> String {
            "parity-of-max".into()
        }
        fn time(&self, _n: usize) -> usize {
            self.radius
        }
        fn evaluate(&self, view: &GridView<'_>) -> u32 {
            let r = self.radius as i64;
            let mut best = view.my_id();
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx.abs() + dy.abs() <= r {
                        best = best.max(view.id_at(dx, dy));
                    }
                }
            }
            (best % 2) as u32
        }
    }

    #[test]
    fn algorithm_runs_on_whole_instance() {
        let inst = GridInstance::new(6, &IdAssignment::Sequential);
        let out = ParityOfMax { radius: 1 }.run(&inst);
        assert_eq!(out.len(), 36);
    }

    #[test]
    #[should_panic(expected = "outside radius")]
    fn view_enforces_radius() {
        let inst = GridInstance::new(6, &IdAssignment::Sequential);
        let view = inst.view(Pos::new(0, 0), 2);
        let _ = view.id_at(2, 1); // L1 distance 3 > 2
    }

    #[test]
    fn view_wraps_around() {
        let inst = GridInstance::new(4, &IdAssignment::Sequential);
        let view = inst.view(Pos::new(0, 0), 1);
        // West of (0,0) is (3,0), whose sequential id is 4.
        assert_eq!(view.id_at(-1, 0), 4);
    }

    #[test]
    fn recentre_composes() {
        let inst = GridInstance::new(8, &IdAssignment::Shuffled { seed: 5 });
        let view = inst.view(Pos::new(3, 3), 4);
        let sub = view.recentre(2, 0, 2);
        assert_eq!(sub.my_id(), view.id_at(2, 0));
        assert_eq!(sub.id_at(0, 1), view.id_at(2, 1));
    }

    #[test]
    #[should_panic(expected = "exceeds parent")]
    fn recentre_cannot_escape() {
        let inst = GridInstance::new(8, &IdAssignment::Sequential);
        let view = inst.view(Pos::new(3, 3), 2);
        let _ = view.recentre(2, 0, 1);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let torus = Torus2::square(2);
        let _ = GridInstance::from_ids(torus, vec![1, 1, 2, 3]);
    }

    #[test]
    fn torusd_instance_lowers_to_grid_instance() {
        let inst = TorusDInstance::new(2, 6, &IdAssignment::Shuffled { seed: 11 });
        let grid = inst.to_grid_instance();
        assert_eq!(grid.ids(), inst.ids());
        let torus2 = grid.torus();
        for v in 0..inst.torus().node_count() {
            let pd = inst.torus().pos(v);
            let p2 = Pos::new(pd.0[0], pd.0[1]);
            // Same dense index ⇒ same identifier under both addressings.
            assert_eq!(inst.torus().index(&pd), torus2.index(p2));
            assert_eq!(inst.id(&pd), grid.id(p2));
        }
    }

    #[test]
    #[should_panic(expected = "only 2-dimensional")]
    fn three_dim_instance_does_not_lower() {
        let _ = TorusDInstance::new(3, 4, &IdAssignment::Sequential).to_grid_instance();
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn torusd_duplicate_ids_rejected() {
        let torus = TorusD::new(3, 2);
        let _ = TorusDInstance::from_ids(torus, vec![1; 8]);
    }
}
