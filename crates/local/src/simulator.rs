//! A synchronous message-passing simulator (§3, "LOCAL model").
//!
//! Computation proceeds in synchronous rounds: all nodes in parallel send
//! one message per incident edge, receive the messages addressed to them,
//! and update local state; a node may halt with an output at any round.
//! The simulator runs any [`Protocol`] over any [`Graph`] and reports the
//! number of rounds until the *last* node halts — the running time in the
//! sense of the paper.

use lcl_budget::{Budget, BudgetExceeded};
use lcl_grid::Graph;
use std::fmt;

/// A distributed protocol: per-node state plus a synchronous round
/// function.
///
/// Ports: node `v`'s incident edges are numbered `0..degree(v)` in the
/// order of [`Graph::for_each_neighbour`]; `inbox[i]` holds the message
/// received from the `i`-th neighbour this round (if any), and the outbox
/// slot `i` addresses that same neighbour.
pub trait Protocol {
    /// Per-node state.
    type State;
    /// Message alphabet (unbounded size, per the LOCAL model).
    type Msg: Clone;
    /// Local output type.
    type Output;

    /// Initial state of node `v`, given its unique identifier, its degree,
    /// and the globally known instance size `n`.
    fn init(&self, v: usize, id: u64, degree: usize, n: usize) -> Self::State;

    /// One synchronous round. Fill `outbox` (one optional message per
    /// port); return `Some(output)` to halt. A halted node keeps
    /// delivering an empty outbox.
    fn round(
        &self,
        state: &mut Self::State,
        inbox: &[Option<Self::Msg>],
        outbox: &mut [Option<Self::Msg>],
    ) -> Option<Self::Output>;
}

/// Why a simulation did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulationError {
    /// The round budget was exhausted before every node halted.
    RoundLimitExceeded {
        /// The budget that was exceeded.
        limit: u64,
        /// How many nodes had not yet halted.
        unfinished: usize,
    },
    /// A cooperative [`Budget`] tripped between rounds (see
    /// [`Simulator::run_budgeted`]); distinct from the simulator's own
    /// round limit so callers can tell "protocol too slow" from "caller
    /// out of time".
    BudgetExceeded {
        /// Rounds completed before the budget tripped.
        rounds: u64,
        /// What tripped.
        cause: BudgetExceeded,
    },
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::RoundLimitExceeded { limit, unfinished } => write!(
                f,
                "simulation exceeded {limit} rounds with {unfinished} nodes unfinished"
            ),
            SimulationError::BudgetExceeded { rounds, cause } => {
                write!(
                    f,
                    "simulation budget tripped after {rounds} rounds: {cause}"
                )
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimulationRun<O> {
    /// Output of every node, in node-index order.
    pub outputs: Vec<O>,
    /// Rounds until the last node halted.
    pub rounds: u64,
}

/// Runs protocols over graphs.
#[derive(Clone, Debug)]
pub struct Simulator {
    max_rounds: u64,
}

impl Simulator {
    /// Creates a simulator with the given round budget.
    pub fn new(max_rounds: u64) -> Simulator {
        Simulator { max_rounds }
    }

    /// Runs `protocol` on `graph` with the given identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::RoundLimitExceeded`] if some node has not
    /// halted within the round budget.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != graph.node_count()`.
    pub fn run<G: Graph, P: Protocol>(
        &self,
        graph: &G,
        ids: &[u64],
        protocol: &P,
    ) -> Result<SimulationRun<P::Output>, SimulationError> {
        self.run_budgeted(graph, ids, protocol, &Budget::unlimited())
    }

    /// Like [`Simulator::run`], but polls a cooperative [`Budget`] once
    /// per synchronous round, charging one work unit per node-round. The
    /// check is allocation-free (two atomics and a clock read), so the
    /// round loop's no-allocation guarantee holds with a budget armed.
    ///
    /// # Errors
    ///
    /// [`SimulationError::RoundLimitExceeded`] if some node has not
    /// halted within the round budget;
    /// [`SimulationError::BudgetExceeded`] if `budget` tripped first.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != graph.node_count()`.
    pub fn run_budgeted<G: Graph, P: Protocol>(
        &self,
        graph: &G,
        ids: &[u64],
        protocol: &P,
        budget: &Budget,
    ) -> Result<SimulationRun<P::Output>, SimulationError> {
        let n = graph.node_count();
        assert_eq!(ids.len(), n, "one identifier per node required");
        // One span per run (not per round): the round loop's
        // no-allocation guarantee is untouched, and the span's counters
        // surface the same numbers the `Rounds` ledger reports.
        let mut span = lcl_trace::span(lcl_trace::SpanKind::Simulator, "simulate");

        // Topology setup, paid once: the CSR adjacency view (slot `i` of
        // node `v` is its port `i`) and, per slot, the reverse port on the
        // other side of the edge.
        let adj = graph.adjacency();
        let slots = adj.edge_slots();
        let mut reverse_port = vec![0usize; slots];
        for v in 0..n {
            let base = adj.offset(v);
            for (port, &u) in adj.neighbours(v).iter().enumerate() {
                reverse_port[base + port] = adj
                    .neighbours(u)
                    .iter()
                    .position(|&w| w == v)
                    .expect("graph adjacency must be symmetric");
            }
        }

        let mut states: Vec<P::State> = (0..n)
            .map(|v| protocol.init(v, ids[v], adj.degree(v), n))
            .collect();
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        // Message arenas, double-buffered: flat per-slot buffers indexed by
        // the CSR offsets. These are the only message storage for the whole
        // simulation — the round loop below never allocates (asserted by
        // the counting-allocator test).
        let mut inbox: Vec<Option<P::Msg>> = (0..slots).map(|_| None).collect();
        let mut inbox_next: Vec<Option<P::Msg>> = (0..slots).map(|_| None).collect();
        let mut outbox: Vec<Option<P::Msg>> = (0..slots).map(|_| None).collect();
        let mut done = 0usize;

        let unlimited = budget.is_unlimited();
        for round in 1..=self.max_rounds {
            if !unlimited {
                if let Err(cause) = budget.charge(n as u64) {
                    span.counters([round - 1, n as u64, 0, 0]);
                    return Err(SimulationError::BudgetExceeded {
                        rounds: round - 1,
                        cause,
                    });
                }
            }
            // Compute all outboxes against the previous round's inboxes.
            // Halted nodes are skipped, so their slots stay drained (None).
            for v in 0..n {
                if outputs[v].is_some() {
                    continue;
                }
                let range = adj.range(v);
                if let Some(out) =
                    protocol.round(&mut states[v], &inbox[range.clone()], &mut outbox[range])
                {
                    outputs[v] = Some(out);
                    done += 1;
                }
            }
            if done == n {
                span.counters([round, n as u64, 0, 0]);
                return Ok(SimulationRun {
                    outputs: outputs.into_iter().map(Option::unwrap).collect(),
                    rounds: round,
                });
            }
            // Deliver into the back buffer, then swap. Taking each outbox
            // slot leaves the whole outbox arena drained for the next round.
            for slot in inbox_next.iter_mut() {
                *slot = None;
            }
            for v in 0..n {
                let base = adj.offset(v);
                for (port, &u) in adj.neighbours(v).iter().enumerate() {
                    if let Some(m) = outbox[base + port].take() {
                        inbox_next[adj.offset(u) + reverse_port[base + port]] = Some(m);
                    }
                }
            }
            std::mem::swap(&mut inbox, &mut inbox_next);
        }
        span.counters([self.max_rounds, n as u64, 0, 0]);
        Err(SimulationError::RoundLimitExceeded {
            limit: self.max_rounds,
            unfinished: n - done,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_grid::{CycleGraph, Torus2};

    /// Every node floods the maximum identifier it has seen; halts after a
    /// fixed number of rounds with that maximum.
    struct FloodMax {
        rounds: u64,
    }

    struct FloodState {
        best: u64,
        round: u64,
    }

    impl Protocol for FloodMax {
        type State = FloodState;
        type Msg = u64;
        type Output = u64;

        fn init(&self, _v: usize, id: u64, _deg: usize, _n: usize) -> FloodState {
            FloodState { best: id, round: 0 }
        }

        fn round(
            &self,
            state: &mut FloodState,
            inbox: &[Option<u64>],
            outbox: &mut [Option<u64>],
        ) -> Option<u64> {
            for msg in inbox.iter().flatten() {
                state.best = state.best.max(*msg);
            }
            state.round += 1;
            if state.round > self.rounds {
                return Some(state.best);
            }
            for slot in outbox.iter_mut() {
                *slot = Some(state.best);
            }
            None
        }
    }

    #[test]
    fn flood_max_on_cycle_reaches_all_within_half_length() {
        let g = CycleGraph::new(9);
        let ids: Vec<u64> = (1..=9).collect();
        // Radius 4 suffices to see the whole 9-cycle.
        let run = Simulator::new(100)
            .run(&g, &ids, &FloodMax { rounds: 4 })
            .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 9));
        assert_eq!(run.rounds, 5); // 4 communication rounds + halting round
    }

    #[test]
    fn flood_max_on_torus() {
        let t = Torus2::square(4);
        let ids: Vec<u64> = (1..=16).collect();
        // Torus diameter is 4, so 4 rounds suffice.
        let run = Simulator::new(100)
            .run(&t, &ids, &FloodMax { rounds: 4 })
            .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 16));
    }

    #[test]
    fn insufficient_rounds_do_not_reach() {
        let g = CycleGraph::new(32);
        let ids: Vec<u64> = (1..=32).collect();
        let run = Simulator::new(100)
            .run(&g, &ids, &FloodMax { rounds: 3 })
            .unwrap();
        // Nodes far from the maximum have not heard of it.
        assert!(run.outputs.iter().any(|&o| o != 32));
    }

    #[test]
    fn budget_trips_between_rounds() {
        let g = CycleGraph::new(8);
        let ids: Vec<u64> = (1..=8).collect();
        // 8 nodes/round: a 20-step quota admits round 1 (8 steps) and
        // round 2 (16), then trips before round 3's outboxes compute.
        let budget = Budget::steps(20);
        let err = Simulator::new(100)
            .run_budgeted(&g, &ids, &FloodMax { rounds: 10 }, &budget)
            .unwrap_err();
        match err {
            SimulationError::BudgetExceeded { rounds, .. } => assert_eq!(rounds, 2),
            other => panic!("expected budget trip, got {other:?}"),
        }
        // An unlimited budget reproduces `run` exactly.
        let run = Simulator::new(100)
            .run_budgeted(&g, &ids, &FloodMax { rounds: 3 }, &Budget::unlimited())
            .unwrap();
        assert_eq!(
            run.outputs,
            Simulator::new(100)
                .run(&g, &ids, &FloodMax { rounds: 3 })
                .unwrap()
                .outputs
        );
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = CycleGraph::new(5);
        let ids: Vec<u64> = (1..=5).collect();
        let err = Simulator::new(2)
            .run(&g, &ids, &FloodMax { rounds: 10 })
            .unwrap_err();
        assert!(matches!(err, SimulationError::RoundLimitExceeded { .. }));
        assert!(err.to_string().contains("exceeded"));
    }

    // The workspace forbids unsafe code outside tests (and denies it
    // inside them); this module is the one sanctioned exception — a
    // counting `GlobalAlloc` cannot be written without `unsafe impl`.
    #[allow(unsafe_code)]
    mod alloc_counting {
        //! A counting global allocator proving the round loop allocates
        //! nothing: two runs that differ only in round count must perform
        //! exactly the same number of heap allocations (setup is identical,
        //! so any difference would be per-round allocation).

        use super::*;
        use std::alloc::{GlobalAlloc, Layout, System};
        use std::cell::Cell;

        thread_local! {
            static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
        }

        struct CountingAllocator;

        // Safety: defers entirely to `System`; the counter is a const-
        // initialised thread-local `Cell`, whose access does not allocate.
        unsafe impl GlobalAlloc for CountingAllocator {
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
                System.alloc(layout)
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                System.dealloc(ptr, layout)
            }

            unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
                System.realloc(ptr, layout, new_size)
            }
        }

        #[global_allocator]
        static ALLOCATOR: CountingAllocator = CountingAllocator;

        /// Heap allocations performed by `f` on this thread.
        fn allocations_during<R>(f: impl FnOnce() -> R) -> u64 {
            let before = ALLOCATIONS.with(Cell::get);
            let _keep = f();
            let after = ALLOCATIONS.with(Cell::get);
            after - before
        }

        #[test]
        fn round_loop_is_allocation_free() {
            let g = CycleGraph::new(48);
            let ids: Vec<u64> = (1..=48).collect();
            // Warm up so lazy one-time costs (TLS, allocator internals)
            // don't skew the first measurement.
            let _ = Simulator::new(1000).run(&g, &ids, &FloodMax { rounds: 2 });
            let short = allocations_during(|| {
                Simulator::new(1000)
                    .run(&g, &ids, &FloodMax { rounds: 4 })
                    .unwrap()
            });
            let long = allocations_during(|| {
                Simulator::new(1000)
                    .run(&g, &ids, &FloodMax { rounds: 100 })
                    .unwrap()
            });
            assert_eq!(
                short, long,
                "extra allocations in 96 extra rounds: the message arenas \
                 are not being reused"
            );
        }
    }
}
