//! Unique identifier assignments.
//!
//! The LOCAL model labels nodes with unique identifiers from
//! `{1, …, poly(n)}` (§3). Lower-bound arguments quantify over *all*
//! assignments, so experiments must be able to vary them; this module
//! provides deterministic, seeded strategies without external dependencies.

/// A tiny deterministic PRNG (SplitMix64), used for reproducible shuffled
/// identifier assignments and test instance generation.
///
/// # Example
///
/// ```
/// use lcl_local::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection-free multiply-shift is fine for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A strategy for assigning unique identifiers to `n` nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdAssignment {
    /// Node `v` gets identifier `v + 1`.
    Sequential,
    /// A seeded pseudo-random permutation of `{1, …, n}`.
    Shuffled {
        /// PRNG seed; equal seeds give equal assignments.
        seed: u64,
    },
    /// A seeded injection into `{1, …, n·spread}`, exercising the
    /// `poly(n)`-sized identifier space.
    Sparse {
        /// PRNG seed.
        seed: u64,
        /// Multiplicative size of the identifier space (≥ 1).
        spread: u64,
    },
}

impl IdAssignment {
    /// Materialises the assignment for `n` nodes.
    ///
    /// The result is a vector of `n` distinct positive identifiers.
    pub fn materialise(&self, n: usize) -> Vec<u64> {
        match *self {
            IdAssignment::Sequential => (1..=n as u64).collect(),
            IdAssignment::Shuffled { seed } => {
                let mut ids: Vec<u64> = (1..=n as u64).collect();
                SplitMix64::new(seed).shuffle(&mut ids);
                ids
            }
            IdAssignment::Sparse { seed, spread } => {
                let spread = spread.max(1);
                let space = (n as u64).saturating_mul(spread).max(n as u64);
                let mut rng = SplitMix64::new(seed);
                let mut used = std::collections::HashSet::with_capacity(n);
                let mut ids = Vec::with_capacity(n);
                while ids.len() < n {
                    let candidate = 1 + rng.next_below(space);
                    if used.insert(candidate) {
                        ids.push(candidate);
                    }
                }
                ids
            }
        }
    }
}

impl Default for IdAssignment {
    fn default() -> Self {
        IdAssignment::Shuffled { seed: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids() {
        assert_eq!(IdAssignment::Sequential.materialise(4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn shuffled_ids_are_a_permutation() {
        let ids = IdAssignment::Shuffled { seed: 7 }.materialise(100);
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(sorted, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_ids_depend_on_seed() {
        let a = IdAssignment::Shuffled { seed: 1 }.materialise(50);
        let b = IdAssignment::Shuffled { seed: 2 }.materialise(50);
        assert_ne!(a, b);
    }

    #[test]
    fn sparse_ids_are_distinct_and_in_range() {
        let ids = IdAssignment::Sparse {
            seed: 3,
            spread: 10,
        }
        .materialise(200);
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 200);
        assert!(ids.iter().all(|&i| (1..=2000).contains(&i)));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let seq: Vec<u64> = (0..5).map(|_| a.next_below(10)).collect();
        let mut b = SplitMix64::new(99);
        let seq2: Vec<u64> = (0..5).map(|_| b.next_below(10)).collect();
        assert_eq!(seq, seq2);
        assert!(seq.iter().all(|&x| x < 10));
    }
}
