//! The LOCAL model of distributed computing (§3 of the paper).
//!
//! In the LOCAL model, a network is a graph whose nodes carry unique
//! `O(log n)`-bit identifiers; computation proceeds in synchronous rounds of
//! unbounded messages, and a time-`t` algorithm is equivalently *a function
//! from radius-`t` neighbourhoods to local outputs*. This crate provides
//! both faces of that equivalence:
//!
//! * [`GridInstance`] / [`GridView`] / [`GridAlgorithm`] — the functional
//!   view on oriented toroidal grids, which is what the speed-up theorem
//!   (§5) manipulates as a black box;
//! * [`Protocol`] / [`Simulator`] — an explicit synchronous message-passing
//!   simulator over arbitrary [`lcl_grid::Graph`]s, used to validate the
//!   round accounting of the symmetry-breaking building blocks;
//! * [`Rounds`] — an explicit round-cost ledger for batched algorithm
//!   implementations, with named phases.

#![cfg_attr(not(test), forbid(unsafe_code))]
#![cfg_attr(test, deny(unsafe_code))]
mod ids;
mod instance;
mod rounds;
mod simulator;

pub use ids::{IdAssignment, SplitMix64};
pub use instance::{GridAlgorithm, GridInstance, GridView, TorusDInstance};
pub use rounds::Rounds;
pub use simulator::{Protocol, SimulationError, SimulationRun, Simulator};

/// The iterated-logarithm function `log* n` (base 2): the number of times
/// `log₂` must be applied to `n` before the result is at most 1.
///
/// # Example
///
/// ```
/// assert_eq!(lcl_local::log_star(1), 0);
/// assert_eq!(lcl_local::log_star(2), 1);
/// assert_eq!(lcl_local::log_star(16), 3);
/// assert_eq!(lcl_local::log_star(65536), 4);
/// ```
pub fn log_star(n: u64) -> u32 {
    // log* n = the smallest i with 2↑↑i ≥ n (tower of twos of height i).
    // The towers representable in u64 are 1, 2, 4, 16, 65536; anything
    // larger than 65536 has log* = 5 (2↑↑5 = 2^65536 dwarfs u64).
    const TOWERS: [u64; 5] = [1, 2, 4, 16, 65536];
    for (i, &t) in TOWERS.iter().enumerate() {
        if n <= t {
            return i as u32;
        }
    }
    5
}

#[cfg(test)]
mod tests {
    use super::log_star;

    #[test]
    fn log_star_small_values() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(3), 2);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(5), 3);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(17), 4);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(65537), 5);
    }

    #[test]
    fn log_star_never_exceeds_five() {
        for shift in 0..64 {
            assert!(log_star(1u64 << shift) <= 5);
        }
        assert_eq!(log_star(u64::MAX), 5);
    }
}
