//! An explicit round-cost ledger.
//!
//! Most algorithm implementations in this repository are *batched*: they
//! compute the outcome of a distributed phase centrally (for wall-clock
//! feasibility at `n² ≥ 10⁶` nodes) and charge the ledger the number of
//! LOCAL rounds that phase costs. The message-passing [`crate::Simulator`]
//! cross-validates the charges on small instances. See DESIGN.md §3.5.

use std::fmt;

/// A named accumulator of LOCAL round costs.
#[derive(Clone, Debug, Default)]
pub struct Rounds {
    phases: Vec<(String, u64)>,
}

impl Rounds {
    /// Creates an empty ledger.
    pub fn new() -> Rounds {
        Rounds::default()
    }

    /// Charges `rounds` rounds to a named phase.
    pub fn charge(&mut self, phase: &str, rounds: u64) {
        self.phases.push((phase.to_string(), rounds));
    }

    /// Total rounds charged.
    pub fn total(&self) -> u64 {
        self.phases.iter().map(|(_, r)| r).sum()
    }

    /// All phases in charge order.
    pub fn phases(&self) -> &[(String, u64)] {
        &self.phases
    }

    /// The most expensive phase, if any rounds were charged — the first
    /// thing to look at in a `SolveReport` when a solver seems slow.
    pub fn dominant_phase(&self) -> Option<(&str, u64)> {
        self.phases
            .iter()
            .max_by_key(|(_, r)| *r)
            .map(|(name, r)| (name.as_str(), *r))
    }

    /// Merges another ledger into this one, prefixing its phase names.
    pub fn absorb(&mut self, prefix: &str, other: &Rounds) {
        for (name, r) in &other.phases {
            self.phases.push((format!("{prefix}/{name}"), *r));
        }
    }
}

impl fmt::Display for Rounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total rounds: {}", self.total())?;
        for (name, r) in &self.phases {
            writeln!(f, "  {name}: {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut r = Rounds::new();
        r.charge("mis", 12);
        r.charge("fill", 3);
        assert_eq!(r.total(), 15);
        assert_eq!(r.phases().len(), 2);
    }

    #[test]
    fn absorb_prefixes() {
        let mut inner = Rounds::new();
        inner.charge("cv", 5);
        let mut outer = Rounds::new();
        outer.charge("setup", 1);
        outer.absorb("anchors", &inner);
        assert_eq!(outer.total(), 6);
        assert_eq!(outer.phases()[1].0, "anchors/cv");
    }

    #[test]
    fn dominant_phase_is_the_largest() {
        assert_eq!(Rounds::new().dominant_phase(), None);
        let mut r = Rounds::new();
        r.charge("mis", 12);
        r.charge("fill", 3);
        assert_eq!(r.dominant_phase(), Some(("mis", 12)));
    }

    #[test]
    fn display_is_nonempty() {
        let mut r = Rounds::new();
        r.charge("x", 1);
        let s = r.to_string();
        assert!(s.contains("total rounds: 1"));
        assert!(s.contains("x: 1"));
    }
}
