//! Pins the disabled-collector guarantee: tracing compiled into a hot
//! path must cost *nothing* on the allocator when the collector is
//! disabled — `span`/`mark` are one relaxed atomic load, and the
//! solver-cost ledger is a `Cell` of a `Copy` struct.
//!
//! Reuses the counting-allocator idiom from
//! `crates/local/src/simulator.rs`: a `GlobalAlloc` shim that defers
//! to the system allocator and counts allocations per thread. This is
//! the one test file in the crate allowed `unsafe` (the
//! `GlobalAlloc` impl), mirrored in CI's unsafe-audit allowlist.

#![deny(unsafe_code)]

#[allow(unsafe_code)] // the GlobalAlloc shim is unavoidably unsafe
mod alloc_counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTING: CountingAllocator = CountingAllocator;

    /// Allocations performed by the current thread while running `f`.
    pub fn allocations_during<R>(f: impl FnOnce() -> R) -> u64 {
        let before = ALLOCATIONS.with(|c| c.get());
        let result = f();
        let after = ALLOCATIONS.with(|c| c.get());
        drop(result);
        after - before
    }
}

use alloc_counting::allocations_during;
use lcl_trace::{SolverCost, SpanKind};

/// With the collector disabled (it is never enabled in this test
/// binary), the full tracing surface the engine hot path touches —
/// span open/close, nested spans, counter updates, instant marks, and
/// the solver-cost ledger — performs zero allocations.
#[test]
fn disabled_tracing_allocates_nothing_on_the_hot_path() {
    assert!(!lcl_trace::is_enabled());
    // Warm up thread-locals outside the measured window (first touch
    // of a const-initialised Cell does not allocate, but keep the
    // measurement about the steady state, like the simulator test).
    lcl_trace::charge_solver(SolverCost::default());
    let _ = lcl_trace::take_solver_cost();
    {
        let _warm = lcl_trace::span(SpanKind::Solve, "warmup");
    }

    let allocations = allocations_during(|| {
        for i in 0..10_000u64 {
            let mut solve = lcl_trace::span(SpanKind::Solve, "solve");
            solve.count(0, i);
            {
                let mut tier = lcl_trace::span(SpanKind::Tier, "tier");
                tier.counters([i, 1, 2, 3]);
                lcl_trace::mark(SpanKind::Mark, "breaker-skip", [i, 0, 0, 0]);
            }
            lcl_trace::charge_solver(SolverCost {
                decisions: i,
                propagations: i,
                conflicts: 0,
                learned: 0,
            });
            let cost = lcl_trace::take_solver_cost();
            assert!(!solve.is_active());
            assert_eq!(cost.decisions, i);
        }
    });
    assert_eq!(
        allocations, 0,
        "disabled tracing must not allocate on the solve hot path"
    );

    // Nothing was recorded either: the collector was never enabled.
    assert_eq!(lcl_trace::recorded(), 0);
    assert_eq!(lcl_trace::dropped(), 0);
    assert!(lcl_trace::snapshot().is_empty());
}
