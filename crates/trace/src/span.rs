//! RAII spans, instant marks, and the thread-local context that links
//! them into a tree without touching any function signature.
//!
//! A thread carries two pieces of implicit context: the *current
//! parent span* (updated by every [`SpanGuard`] open/close) and the
//! *current trace id* (set once per served request by
//! [`set_current_trace`]). Opening a span snapshots both, so the
//! recorded events reconstruct the request → tier → SAT/synthesis/
//! simulator tree exactly, even across deeply nested calls that know
//! nothing about tracing.
//!
//! When the global collector is disabled, [`span`] returns an *inert*
//! guard after a single relaxed atomic load: no allocation, no
//! thread-local access, no interner lock. That branch is the entire
//! disabled-mode cost and is pinned by the counting-allocator test.

use crate::collector::{global, intern, next_span_id, now_ns, RawEvent};
use std::cell::Cell;

/// What kind of work a span covers. Doubles as the Chrome trace
/// category and selects human-readable counter names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SpanKind {
    /// A whole served HTTP request.
    Request,
    /// `Engine::prepare`: plan-cache lookup plus (on miss) resolution.
    Prepare,
    /// Decidability/complexity analysis of a problem spec.
    Analysis,
    /// Registry plan resolution (choosing the solver tiers).
    Resolve,
    /// One `PreparedProblem::solve_with` call (the tier walk).
    Solve,
    /// One solver tier attempt inside the walk.
    Tier,
    /// One SAT `solve_budgeted` call.
    Sat,
    /// Normal-form synthesis (the iterative-deepening fixpoint).
    Synthesis,
    /// A LOCAL-model simulator run.
    Simulator,
    /// A dedup-window lookup (stream path).
    Dedup,
    /// Output validation against the problem spec.
    Validation,
    /// A zero-duration instant event (breaker skip, cache hit, …).
    Mark,
}

impl SpanKind {
    /// Decodes a wire value; unknown values degrade to [`SpanKind::Mark`].
    pub fn from_u32(v: u32) -> SpanKind {
        match v {
            0 => SpanKind::Request,
            1 => SpanKind::Prepare,
            2 => SpanKind::Analysis,
            3 => SpanKind::Resolve,
            4 => SpanKind::Solve,
            5 => SpanKind::Tier,
            6 => SpanKind::Sat,
            7 => SpanKind::Synthesis,
            8 => SpanKind::Simulator,
            9 => SpanKind::Dedup,
            10 => SpanKind::Validation,
            _ => SpanKind::Mark,
        }
    }

    /// The Chrome trace category string.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Prepare => "prepare",
            SpanKind::Analysis => "analysis",
            SpanKind::Resolve => "resolve",
            SpanKind::Solve => "solve",
            SpanKind::Tier => "tier",
            SpanKind::Sat => "sat",
            SpanKind::Synthesis => "synthesis",
            SpanKind::Simulator => "simulator",
            SpanKind::Dedup => "dedup",
            SpanKind::Validation => "validation",
            SpanKind::Mark => "mark",
        }
    }

    /// Human-readable names for the four counter slots of this kind.
    pub fn counter_names(self) -> [&'static str; 4] {
        match self {
            SpanKind::Request => ["status", "c1", "c2", "c3"],
            SpanKind::Prepare => ["cache_hit", "c1", "c2", "c3"],
            SpanKind::Tier => ["outcome", "c1", "c2", "c3"],
            SpanKind::Sat => ["decisions", "propagations", "conflicts", "learned"],
            SpanKind::Synthesis => ["attempts", "origin", "k", "c3"],
            SpanKind::Simulator => ["rounds", "nodes", "c2", "c3"],
            SpanKind::Dedup => ["hit", "poisoned", "c2", "c3"],
            _ => ["c0", "c1", "c2", "c3"],
        }
    }
}

impl From<SpanKind> for u32 {
    fn from(kind: SpanKind) -> u32 {
        match kind {
            SpanKind::Request => 0,
            SpanKind::Prepare => 1,
            SpanKind::Analysis => 2,
            SpanKind::Resolve => 3,
            SpanKind::Solve => 4,
            SpanKind::Tier => 5,
            SpanKind::Sat => 6,
            SpanKind::Synthesis => 7,
            SpanKind::Simulator => 8,
            SpanKind::Dedup => 9,
            SpanKind::Validation => 10,
            SpanKind::Mark => 11,
        }
    }
}

thread_local! {
    /// The innermost open span on this thread (0 = none).
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    /// The request trace id spans on this thread belong to (0 = none).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Tags every span subsequently recorded on this thread with a request
/// trace id. Pass 0 to clear. `lcl-serve` sets this at the top of each
/// request and clears it before the connection handler returns the
/// thread to the pool.
pub fn set_current_trace(trace_id: u64) {
    CURRENT_TRACE.with(|c| c.set(trace_id));
}

/// The trace id set by [`set_current_trace`] on this thread (0 = none).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// An open span, recorded into the global collector when dropped (or
/// inert — id 0 — when tracing is disabled). Early returns and `?` are
/// covered for free by the drop.
#[derive(Debug)]
pub struct SpanGuard {
    span_id: u64,
    parent: u64,
    trace_id: u64,
    kind: SpanKind,
    name_id: u32,
    start_ns: u64,
    counters: [u64; 4],
}

/// Opens a span as a child of the thread's current span. The returned
/// guard records the span when dropped. When the global collector is
/// disabled this is a single atomic load returning an inert guard.
#[inline]
pub fn span(kind: SpanKind, name: &str) -> SpanGuard {
    if !global().is_enabled() {
        return SpanGuard {
            span_id: 0,
            parent: 0,
            trace_id: 0,
            kind,
            name_id: 0,
            start_ns: 0,
            counters: [0; 4],
        };
    }
    let span_id = next_span_id();
    let parent = CURRENT_PARENT.with(|c| c.replace(span_id));
    SpanGuard {
        span_id,
        parent,
        trace_id: current_trace(),
        kind,
        name_id: intern(name),
        start_ns: now_ns(),
        counters: [0; 4],
    }
}

impl SpanGuard {
    /// False for the inert guard handed out while tracing is disabled.
    pub fn is_active(&self) -> bool {
        self.span_id != 0
    }

    /// This span's id (0 when inert) — usable as a parent reference.
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Sets counter slot `index` (0..4); see
    /// [`SpanKind::counter_names`] for what each slot means per kind.
    pub fn count(&mut self, index: usize, value: u64) {
        if self.span_id != 0 {
            self.counters[index % 4] = value;
        }
    }

    /// Sets all four counter slots at once.
    pub fn counters(&mut self, counters: [u64; 4]) {
        if self.span_id != 0 {
            self.counters = counters;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.span_id == 0 {
            return;
        }
        CURRENT_PARENT.with(|c| c.set(self.parent));
        global().record(&RawEvent {
            span_id: self.span_id,
            parent_id: self.parent,
            trace_id: self.trace_id,
            kind: self.kind.into(),
            name_id: self.name_id,
            start_ns: self.start_ns,
            end_ns: now_ns(),
            counters: self.counters,
        });
    }
}

/// Records a zero-duration instant event under the current span
/// (breaker skips, cache hits, timeouts). A no-op single branch when
/// tracing is disabled.
#[inline]
pub fn mark(kind: SpanKind, name: &str, counters: [u64; 4]) {
    if !global().is_enabled() {
        return;
    }
    let ts = now_ns();
    global().record(&RawEvent {
        span_id: next_span_id(),
        parent_id: CURRENT_PARENT.with(|c| c.get()),
        trace_id: current_trace(),
        kind: kind.into(),
        name_id: intern(name),
        start_ns: ts,
        end_ns: ts,
        counters,
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    /// Each test uses a distinct trace id so parallel tests sharing
    /// the process-global collector cannot see each other's events.
    fn scoped<R>(trace_id: u64, f: impl FnOnce() -> R) -> R {
        crate::enable(4096);
        set_current_trace(trace_id);
        let out = f();
        set_current_trace(0);
        out
    }

    #[test]
    fn spans_nest_into_a_tree() {
        scoped(0xA11CE, || {
            let root_id;
            {
                let root = span(SpanKind::Solve, "solve");
                root_id = root.id();
                {
                    let mut tier = span(SpanKind::Tier, "tier-one");
                    assert_eq!(current_trace(), 0xA11CE);
                    tier.count(0, 7);
                    let _leaf = span(SpanKind::Sat, "sat-solve");
                }
                mark(SpanKind::Mark, "breaker-skip", [1, 0, 0, 0]);
            }
            let trace = crate::snapshot_for(0xA11CE);
            assert_eq!(trace.events.len(), 4);
            let root = trace.events.iter().find(|e| e.name == "solve").unwrap();
            assert_eq!(root.span_id, root_id);
            assert_eq!(root.parent_id, 0);
            let tier = trace.events.iter().find(|e| e.name == "tier-one").unwrap();
            assert_eq!(tier.parent_id, root_id);
            assert_eq!(tier.counters[0], 7);
            let sat = trace.events.iter().find(|e| e.name == "sat-solve").unwrap();
            assert_eq!(sat.parent_id, tier.span_id);
            let m = trace
                .events
                .iter()
                .find(|e| e.name == "breaker-skip")
                .unwrap();
            assert_eq!(m.parent_id, root_id);
            assert_eq!(m.duration_ns(), 0);
        });
    }

    #[test]
    fn parent_restored_after_guard_drops() {
        scoped(0xBEEF, || {
            {
                let a = span(SpanKind::Solve, "a");
                {
                    let _b = span(SpanKind::Tier, "b");
                }
                // After b closes, new spans are children of a again.
                let c = span(SpanKind::Tier, "c");
                drop(c);
                drop(a);
            }
            let trace = crate::snapshot_for(0xBEEF);
            let a = trace.events.iter().find(|e| e.name == "a").unwrap();
            let b = trace.events.iter().find(|e| e.name == "b").unwrap();
            let c = trace.events.iter().find(|e| e.name == "c").unwrap();
            assert_eq!(b.parent_id, a.span_id);
            assert_eq!(c.parent_id, a.span_id);
        });
    }

    #[test]
    fn kind_round_trips_through_wire_encoding() {
        for kind in [
            SpanKind::Request,
            SpanKind::Prepare,
            SpanKind::Analysis,
            SpanKind::Resolve,
            SpanKind::Solve,
            SpanKind::Tier,
            SpanKind::Sat,
            SpanKind::Synthesis,
            SpanKind::Simulator,
            SpanKind::Dedup,
            SpanKind::Validation,
            SpanKind::Mark,
        ] {
            assert_eq!(SpanKind::from_u32(u32::from(kind)), kind);
        }
    }
}
