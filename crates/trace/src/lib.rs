//! `lcl-trace`: span-based tracing for the LCL engine.
//!
//! The engine between "request in" and "p99 out" is a pipeline of
//! distinct cost centres — the plan-cache lookup, the registry tier
//! walk, SAT propagation, the synthesis fixpoint, simulator rounds,
//! validation — and a latency histogram cannot say *which* of them a
//! slow solve spent its time in. This crate is the seeing-layer: a
//! dependency-free span/event collector cheap enough to leave compiled
//! into every hot path, plus typed cost ledgers and a Chrome Trace
//! Event exporter.
//!
//! # Architecture
//!
//! * **[`Collector`]** — a bounded ring buffer of fixed-size event
//!   slots. Recording is *wait-free*: one `fetch_add` claims a slot,
//!   per-slot sequence counters (a seqlock of plain `AtomicU64` words —
//!   no `unsafe` anywhere) let readers detect and skip torn slots, and
//!   when the ring wraps the oldest events are overwritten with an
//!   exact [`Collector::dropped`] count. A *disabled* collector is one
//!   relaxed `AtomicBool` load: no allocation, no thread-local touch,
//!   no lock (the zero-allocation test in `tests/zero_alloc.rs` pins
//!   this with a counting allocator).
//! * **[`SpanGuard`]** — RAII spans with parent links threaded through
//!   a thread-local, so instrumentation never changes a function
//!   signature: [`span`] opens a child of the current span, the guard's
//!   drop records it. [`mark`] records zero-duration instant events
//!   (breaker skips, cache hits).
//! * **[`SolverCost`]** — the SAT cost ledger (decisions, propagations,
//!   conflicts, learned clauses). `lcl-sat` charges it into a
//!   thread-local accumulator at the end of every solve; the engine's
//!   tier walk drains it per tier attempt ([`take_solver_cost`]) to
//!   attribute solver work to the tier that caused it, and attaches the
//!   resulting [`Cost`] ledger to every `SolveReport`.
//! * **[`Trace::to_chrome_json`]** — exports a snapshot as Chrome Trace
//!   Event Format JSON, loadable in `chrome://tracing` or Perfetto.
//!
//! Trace ids ([`set_current_trace`]) tie every span recorded on a
//! thread to the request being served; `lcl-serve` mints one per HTTP
//! request and serves the filtered snapshot back at `GET /trace/<id>`.
//!
//! ```
//! lcl_trace::enable(4096);
//! lcl_trace::set_current_trace(0xfeed);
//! {
//!     let mut outer = lcl_trace::span(lcl_trace::SpanKind::Solve, "solve");
//!     let _inner = lcl_trace::span(lcl_trace::SpanKind::Sat, "sat-solve");
//!     outer.count(0, 1);
//! } // guards drop → events recorded
//! let trace = lcl_trace::snapshot_for(0xfeed);
//! assert_eq!(trace.events.len(), 2);
//! assert!(trace.to_chrome_json().contains("\"traceEvents\""));
//! lcl_trace::set_current_trace(0);
//! ```

#![forbid(unsafe_code)]

mod chrome;
mod collector;
mod cost;
mod span;

pub use chrome::Trace;
pub use collector::{
    disable, dropped, enable, global, is_enabled, now_ns, recorded, snapshot, snapshot_for,
    Collector, Event,
};
pub use cost::{charge_solver, take_solver_cost, Cost, SolverCost, TierAttempt, TierOutcome};
pub use span::{current_trace, mark, set_current_trace, span, SpanGuard, SpanKind};
