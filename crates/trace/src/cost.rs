//! Typed cost ledgers: where a solve's work actually went.
//!
//! Spans answer "where did the *time* go"; the ledgers here answer
//! "where did the *work* go" in solver-native units — SAT decisions,
//! propagations, conflicts, learned clauses — attributed to the
//! registry tier that caused them. `lcl-sat` cannot see tiers and the
//! engine cannot see the solver's internals, so the hand-off is a
//! thread-local accumulator: the solver [`charge_solver`]s its deltas
//! at the end of every `solve_budgeted`, and the engine's tier walk
//! [`take_solver_cost`]s the pending total around each tier attempt.
//! Both operations are a `Cell` of a `Copy` struct — no allocation, no
//! locks — and work whether or not span tracing is enabled, so every
//! `SolveReport` carries a [`Cost`] ledger for free.

use std::cell::Cell;
use std::fmt;

/// SAT-solver work counters for one or more solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverCost {
    /// Branching decisions made.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts hit (and analysed).
    pub conflicts: u64,
    /// Clauses learned from conflict analysis.
    pub learned: u64,
}

impl SolverCost {
    /// True iff no solver work was recorded.
    pub fn is_zero(&self) -> bool {
        *self == SolverCost::default()
    }

    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &SolverCost) {
        self.decisions = self.decisions.saturating_add(other.decisions);
        self.propagations = self.propagations.saturating_add(other.propagations);
        self.conflicts = self.conflicts.saturating_add(other.conflicts);
        self.learned = self.learned.saturating_add(other.learned);
    }

    /// The counters in span-slot order
    /// (matches [`SpanKind::Sat`](crate::SpanKind)'s counter names).
    pub fn counters(&self) -> [u64; 4] {
        [
            self.decisions,
            self.propagations,
            self.conflicts,
            self.learned,
        ]
    }
}

thread_local! {
    /// Solver work performed on this thread since the last
    /// [`take_solver_cost`].
    static PENDING_SOLVER: Cell<SolverCost> = const {
        Cell::new(SolverCost {
            decisions: 0,
            propagations: 0,
            conflicts: 0,
            learned: 0,
        })
    };
}

/// Adds solver work to this thread's pending ledger. Called by
/// `lcl-sat` at the end of every `solve_budgeted`; allocation-free.
pub fn charge_solver(cost: SolverCost) {
    PENDING_SOLVER.with(|c| {
        let mut pending = c.get();
        pending.absorb(&cost);
        c.set(pending);
    });
}

/// Drains and returns this thread's pending solver ledger. The
/// engine's tier walk calls this after each tier attempt, attributing
/// all solver work since the previous drain to that tier.
pub fn take_solver_cost() -> SolverCost {
    PENDING_SOLVER.with(|c| c.replace(SolverCost::default()))
}

/// How one tier attempt in the solve walk ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TierOutcome {
    /// The tier produced a validated labelling.
    Solved,
    /// The tier proved the instance unsolvable (an exact answer).
    Unsolvable,
    /// Skipped: capability/instance-shape mismatch before running, or
    /// a policy discard after (instance too small for the tier, result
    /// over the engine's round budget).
    Skipped,
    /// Skipped by an open circuit breaker.
    BreakerSkip,
    /// The tier ran out of budget; the walk fell through to the next.
    Timeout,
    /// The caller cancelled mid-attempt.
    Cancelled,
    /// The tier failed (solver error or panic); the walk fell through.
    Failed,
}

impl TierOutcome {
    /// Stable kebab-case label (used in JSON and trace counters).
    pub fn as_str(self) -> &'static str {
        match self {
            TierOutcome::Solved => "solved",
            TierOutcome::Unsolvable => "unsolvable",
            TierOutcome::Skipped => "skipped",
            TierOutcome::BreakerSkip => "breaker-skip",
            TierOutcome::Timeout => "timeout",
            TierOutcome::Cancelled => "cancelled",
            TierOutcome::Failed => "failed",
        }
    }

    /// Numeric code for the tier span's `outcome` counter slot.
    pub fn code(self) -> u64 {
        match self {
            TierOutcome::Solved => 0,
            TierOutcome::Unsolvable => 1,
            TierOutcome::Skipped => 2,
            TierOutcome::BreakerSkip => 3,
            TierOutcome::Timeout => 4,
            TierOutcome::Cancelled => 5,
            TierOutcome::Failed => 6,
        }
    }
}

impl fmt::Display for TierOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One tier attempt in a solve walk: which tier, how it ended, how
/// long it ran, and the solver work it caused.
#[derive(Clone, Debug)]
pub struct TierAttempt {
    /// The registry tier's solver name.
    pub tier: String,
    /// How the attempt ended.
    pub outcome: TierOutcome,
    /// Wall time spent in (or deciding to skip) this tier, µs.
    pub wall_us: u64,
    /// SAT work attributed to this attempt.
    pub solver: SolverCost,
}

/// The per-solve cost ledger attached to every `SolveReport`: the tier
/// attempts in walk order plus the walk's total wall time.
#[derive(Clone, Debug, Default)]
pub struct Cost {
    /// Tier attempts in the order the walk made them.
    pub tiers: Vec<TierAttempt>,
    /// Total wall time of the solve walk, µs.
    pub total_us: u64,
}

impl Cost {
    /// True iff no tier attempt was recorded.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Sum of the per-tier wall times, µs (≤ `total_us` up to clock
    /// granularity — the walk's own bookkeeping is not inside any
    /// tier).
    pub fn tier_us_sum(&self) -> u64 {
        self.tiers.iter().map(|t| t.wall_us).sum()
    }

    /// Aggregate solver work across every tier attempt.
    pub fn solver_total(&self) -> SolverCost {
        let mut total = SolverCost::default();
        for tier in &self.tiers {
            total.absorb(&tier.solver);
        }
        total
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    #[test]
    fn charge_and_take_round_trip() {
        // Drain anything a sibling test on this thread left behind.
        let _ = take_solver_cost();
        charge_solver(SolverCost {
            decisions: 3,
            propagations: 10,
            conflicts: 1,
            learned: 1,
        });
        charge_solver(SolverCost {
            decisions: 2,
            propagations: 5,
            conflicts: 0,
            learned: 0,
        });
        let total = take_solver_cost();
        assert_eq!(total.decisions, 5);
        assert_eq!(total.propagations, 15);
        assert_eq!(total.conflicts, 1);
        assert_eq!(total.learned, 1);
        // Drained: the next take sees nothing.
        assert!(take_solver_cost().is_zero());
    }

    #[test]
    fn cost_ledger_aggregates_tiers() {
        let cost = Cost {
            tiers: vec![
                TierAttempt {
                    tier: "fast".into(),
                    outcome: TierOutcome::Timeout,
                    wall_us: 40,
                    solver: SolverCost::default(),
                },
                TierAttempt {
                    tier: "sat-existence".into(),
                    outcome: TierOutcome::Solved,
                    wall_us: 60,
                    solver: SolverCost {
                        decisions: 8,
                        propagations: 100,
                        conflicts: 2,
                        learned: 2,
                    },
                },
            ],
            total_us: 110,
        };
        assert_eq!(cost.tier_us_sum(), 100);
        assert!(cost.tier_us_sum() <= cost.total_us);
        assert_eq!(cost.solver_total().propagations, 100);
        assert_eq!(cost.tiers[0].outcome.to_string(), "timeout");
    }
}
