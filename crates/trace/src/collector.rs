//! The bounded ring-buffer collector: wait-free writers, torn-read
//! detection, exact drop accounting — in safe Rust.
//!
//! Each event is one fixed-size slot of `AtomicU64` words guarded by a
//! per-slot sequence counter (a seqlock). A writer claims a slot with a
//! single `fetch_add` on the ring head — wait-free, no CAS loop — then
//! stores the words and flips the sequence from *odd* (write in
//! progress) to *even* (complete). A reader snapshots the sequence,
//! the words, and the sequence again, and skips the slot on any
//! mismatch; because every store is an atomic word there is no `unsafe`
//! and a lost race costs at most one skipped diagnostic event, never
//! undefined behaviour. When the ring wraps, the oldest slots are
//! overwritten and [`Collector::dropped`] reports exactly how many
//! events were lost: `recorded − capacity`, clamped at zero.

use crate::span::SpanKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Words per slot: span id, parent id, trace id, kind｜name, start,
/// end, and four counters.
const SLOT_WORDS: usize = 10;

/// One recorded event, fully decoded from a ring slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Unique id of the span (process-global, never 0).
    pub span_id: u64,
    /// Id of the enclosing span at the time this span opened (0 = root).
    pub parent_id: u64,
    /// The request trace this span belongs to (0 = unattributed).
    pub trace_id: u64,
    /// What kind of work the span covers.
    pub kind: SpanKind,
    /// Interned span name (e.g. the solver tier's name).
    pub name: String,
    /// Start timestamp, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for instant events.
    pub end_ns: u64,
    /// Kind-specific counters (see [`SpanKind::counter_names`]).
    pub counters: [u64; 4],
}

impl Event {
    /// The span's duration in nanoseconds (0 for instant events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The undecoded wire form of one event, as packed into a slot.
pub(crate) struct RawEvent {
    pub span_id: u64,
    pub parent_id: u64,
    pub trace_id: u64,
    pub kind: u32,
    pub name_id: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub counters: [u64; 4],
}

/// One ring slot: a sequence word plus the event payload words.
struct Slot {
    /// `0` = never written; odd = write in progress; even `2k+2` =
    /// complete write of the ring's `k`-th claimed event.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A bounded ring-buffer event collector. The process-wide instance is
/// [`global`]; tests construct private ones to pin wraparound
/// behaviour without cross-test interference.
pub struct Collector {
    enabled: AtomicBool,
    /// Allocated once, on the first [`Collector::enable`]; a disabled
    /// collector that was never enabled owns no memory at all.
    slots: OnceLock<Box<[Slot]>>,
    /// Total events ever claimed (monotonic; `head % capacity` is the
    /// next slot index).
    head: AtomicU64,
}

impl Collector {
    /// A new, disabled collector. `const` so it can back a `static`.
    pub const fn new() -> Collector {
        Collector {
            enabled: AtomicBool::new(false),
            slots: OnceLock::new(),
            head: AtomicU64::new(0),
        }
    }

    /// Enables collection into a ring of `capacity` events (min 1). The
    /// ring is allocated on the *first* enable and its capacity is
    /// fixed for the collector's lifetime; later calls just flip the
    /// enabled flag back on.
    pub fn enable(&self, capacity: usize) {
        self.slots
            .get_or_init(|| (0..capacity.max(1)).map(|_| Slot::new()).collect());
        self.enabled.store(true, Ordering::Release);
    }

    /// Disables collection. Already-recorded events stay readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether [`record`](Self::enable) currently accepts events. This
    /// is the whole cost of a disabled collector: one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity in events (0 until first enabled).
    pub fn capacity(&self) -> usize {
        self.slots.get().map_or(0, |s| s.len())
    }

    /// Total events ever recorded (including since-overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Exactly how many events the ring has dropped (overwritten by
    /// wraparound): `recorded − capacity`, clamped at zero.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Records one event, overwriting the oldest when the ring is full.
    /// Wait-free: one `fetch_add` plus plain atomic stores.
    pub(crate) fn record(&self, ev: &RawEvent) {
        if !self.is_enabled() {
            return;
        }
        let Some(slots) = self.slots.get() else {
            return;
        };
        let claimed = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &slots[(claimed % slots.len() as u64) as usize];
        // Seqlock write: odd marks the write in progress. Two writers
        // can only collide on one slot if the ring wraps a full lap
        // mid-write; the sequence mismatch then voids the slot for
        // readers rather than serving a torn event.
        slot.seq.store(2 * claimed + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        let words = [
            ev.span_id,
            ev.parent_id,
            ev.trace_id,
            (u64::from(ev.kind) << 32) | u64::from(ev.name_id),
            ev.start_ns,
            ev.end_ns,
            ev.counters[0],
            ev.counters[1],
            ev.counters[2],
            ev.counters[3],
        ];
        for (cell, word) in slot.words.iter().zip(words) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.seq.store(2 * claimed + 2, Ordering::Release);
    }

    /// Decodes every completely-written slot, in start-time order.
    /// Slots mid-write (or overwritten during the read) are skipped —
    /// a snapshot is always well-formed, never torn.
    pub fn snapshot_events(&self) -> Vec<Event> {
        let Some(slots) = self.slots.get() else {
            return Vec::new();
        };
        let names = names_snapshot();
        let mut events = Vec::new();
        for slot in slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != before {
                continue;
            }
            let name_id = (words[3] & 0xffff_ffff) as usize;
            events.push(Event {
                span_id: words[0],
                parent_id: words[1],
                trace_id: words[2],
                kind: SpanKind::from_u32((words[3] >> 32) as u32),
                name: names
                    .get(name_id)
                    .cloned()
                    .unwrap_or_else(|| format!("name#{name_id}")),
                start_ns: words[4],
                end_ns: words[5],
                counters: [words[6], words[7], words[8], words[9]],
            });
        }
        events.sort_by_key(|e| (e.start_ns, e.span_id));
        events
    }
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

/// The process-wide collector every [`span`](crate::span)/[`mark`](crate::mark)
/// records into.
static GLOBAL: Collector = Collector::new();

/// The process-wide collector instance.
pub fn global() -> &'static Collector {
    &GLOBAL
}

/// Enables the process-wide collector (ring capacity fixed on first
/// call; see [`Collector::enable`]).
pub fn enable(capacity: usize) {
    GLOBAL.enable(capacity);
}

/// Disables the process-wide collector.
pub fn disable() {
    GLOBAL.disable();
}

/// Whether the process-wide collector is recording.
#[inline]
pub fn is_enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Total events recorded by the process-wide collector.
pub fn recorded() -> u64 {
    GLOBAL.recorded()
}

/// Events dropped (overwritten) by the process-wide ring.
pub fn dropped() -> u64 {
    GLOBAL.dropped()
}

/// A full snapshot of the process-wide ring.
pub fn snapshot() -> crate::Trace {
    crate::Trace {
        events: GLOBAL.snapshot_events(),
        dropped: GLOBAL.dropped(),
    }
}

/// A snapshot filtered to one request trace id.
pub fn snapshot_for(trace_id: u64) -> crate::Trace {
    let mut trace = snapshot();
    trace.events.retain(|e| e.trace_id == trace_id);
    trace
}

/// Span names, interned once per distinct string: ids are indices into
/// this process-global table, so a u32 fits in half a slot word. The
/// steady-state set is tiny (tier names plus a dozen fixed labels), so
/// a linear probe under the lock is cheaper than hashing — and the lock
/// is only ever touched when tracing is *enabled*.
static NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

pub(crate) fn intern(name: &str) -> u32 {
    let mut names = NAMES.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(i) = names.iter().position(|n| n == name) {
        return i as u32;
    }
    names.push(name.to_string());
    (names.len() - 1) as u32
}

fn names_snapshot() -> Vec<String> {
    NAMES.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Nanoseconds since the process trace epoch (the first call). A
/// single monotonic epoch keeps every span in one request on one
/// comparable timeline.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Process-global span id mint. Ids start at 1: 0 means "no span".
pub(crate) fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    fn raw(i: u64) -> RawEvent {
        RawEvent {
            span_id: i + 1,
            parent_id: 0,
            trace_id: 42,
            kind: SpanKind::Mark.into(),
            name_id: intern("wrap-test"),
            start_ns: i,
            end_ns: i,
            counters: [i, 0, 0, 0],
        }
    }

    #[test]
    fn ring_keeps_everything_until_full() {
        let c = Collector::new();
        c.enable(8);
        for i in 0..8 {
            c.record(&raw(i));
        }
        assert_eq!(c.recorded(), 8);
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.snapshot_events().len(), 8);
    }

    #[test]
    fn wraparound_drops_oldest_with_exact_accounting() {
        let c = Collector::new();
        c.enable(8);
        for i in 0..21 {
            c.record(&raw(i));
        }
        // 21 recorded into 8 slots: exactly 13 overwritten.
        assert_eq!(c.recorded(), 21);
        assert_eq!(c.dropped(), 13);
        let events = c.snapshot_events();
        assert_eq!(events.len(), 8);
        // The survivors are exactly the 8 newest, in order.
        let starts: Vec<u64> = events.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, (13..21).collect::<Vec<u64>>());
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new();
        c.enable(4);
        c.record(&raw(0));
        c.disable();
        c.record(&raw(1));
        assert_eq!(c.recorded(), 1);
        assert_eq!(c.snapshot_events().len(), 1);
        // Re-enabling keeps the original ring and resumes counting.
        c.enable(4);
        c.record(&raw(2));
        assert_eq!(c.recorded(), 2);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn never_enabled_collector_is_inert_and_empty() {
        let c = Collector::new();
        c.record(&raw(0));
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.recorded(), 0);
        assert_eq!(c.dropped(), 0);
        assert!(c.snapshot_events().is_empty());
    }

    #[test]
    fn interner_is_stable_per_name() {
        let a = intern("collector-test-alpha");
        let b = intern("collector-test-beta");
        assert_ne!(a, b);
        assert_eq!(a, intern("collector-test-alpha"));
        assert_eq!(b, intern("collector-test-beta"));
    }

    #[test]
    fn concurrent_writers_never_tear_a_snapshot() {
        use std::sync::Arc;
        let c = Arc::new(Collector::new());
        c.enable(32);
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        c.record(&RawEvent {
                            span_id: t * 1000 + i,
                            parent_id: t,
                            trace_id: t,
                            kind: SpanKind::Mark.into(),
                            name_id: 0,
                            start_ns: i,
                            end_ns: i,
                            counters: [t, i, 0, 0],
                        });
                    }
                })
            })
            .collect();
        // Snapshot while the writers hammer the ring: every decoded
        // event must be internally consistent (counters echo ids).
        for _ in 0..50 {
            for e in c.snapshot_events() {
                assert_eq!(e.counters[0], e.parent_id);
                assert_eq!(e.trace_id, e.parent_id);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(c.recorded(), 2000);
        assert_eq!(c.dropped(), 2000 - 32);
    }
}
