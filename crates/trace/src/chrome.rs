//! Chrome Trace Event Format export.
//!
//! [`Trace::to_chrome_json`] renders a snapshot as the JSON object
//! format (`{"traceEvents":[...]}`) understood by `chrome://tracing`,
//! Perfetto, and `about:tracing`: complete spans as `ph:"X"` events
//! with microsecond `ts`/`dur`, instant marks as `ph:"i"`, counters as
//! `args`. Hand-rolled like the rest of the workspace's JSON — the
//! container bakes in no serde.

use crate::collector::Event;
use crate::span::SpanKind;
use std::fmt::Write as _;

/// A decoded snapshot of recorded events plus the ring's drop count.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in start-time order.
    pub events: Vec<Event>,
    /// Events the ring overwrote before this snapshot was taken.
    pub dropped: u64,
}

impl Trace {
    /// True iff the snapshot holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the snapshot in Chrome Trace Event Format (JSON object
    /// form). Load the result in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    ///
    /// Complete spans become `ph:"X"` duration events; zero-duration
    /// marks become `ph:"i"` instants. `ts` and `dur` are microseconds
    /// (with nanosecond decimals) since the process trace epoch. Span
    /// links and counters ride in `args` — `span_id`/`parent_id` as
    /// hex strings, counters under their kind-specific names.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",");
        let _ = write!(out, "\"droppedEvents\":{},", self.dropped);
        out.push_str("\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_event(&mut out, event);
        }
        out.push_str("]}");
        out
    }
}

/// `ns` nanoseconds as a microsecond decimal literal (`12345` ns →
/// `12.345`).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn render_event(out: &mut String, event: &Event) {
    let instant = event.kind == SpanKind::Mark || event.end_ns == event.start_ns;
    out.push_str("{\"name\":\"");
    escape_into(out, &event.name);
    let _ = write!(
        out,
        "\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
        event.kind.category(),
        if instant { "i" } else { "X" },
        micros(event.start_ns),
    );
    if instant {
        out.push_str("\"s\":\"t\",");
    } else {
        let _ = write!(out, "\"dur\":{},", micros(event.duration_ns()));
    }
    out.push_str("\"pid\":1,\"tid\":1,\"args\":{");
    let _ = write!(
        out,
        "\"span_id\":\"{:#x}\",\"parent_id\":\"{:#x}\",\"trace_id\":\"{:016x}\"",
        event.span_id, event.parent_id, event.trace_id,
    );
    let names = event.kind.counter_names();
    for (name, value) in names.iter().zip(event.counters) {
        if value != 0 {
            let _ = write!(out, ",\"{name}\":{value}");
        }
    }
    out.push_str("}}");
}

/// Minimal JSON string escaping (quotes, backslash, control bytes) —
/// span names are short identifiers, but a hostile name must not break
/// the document.
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    fn event(name: &str, kind: SpanKind, start: u64, end: u64) -> Event {
        Event {
            span_id: 2,
            parent_id: 1,
            trace_id: 0xabc,
            kind,
            name: name.to_string(),
            start_ns: start,
            end_ns: end,
            counters: [3, 0, 0, 0],
        }
    }

    #[test]
    fn chrome_json_has_duration_and_instant_events() {
        let trace = Trace {
            events: vec![
                event("solve", SpanKind::Solve, 1_500, 42_500),
                event("breaker-skip", SpanKind::Mark, 2_000, 2_000),
            ],
            dropped: 5,
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"droppedEvents\":5"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":41.000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"trace_id\":\"0000000000000abc\""));
        // Zero counters are omitted; the nonzero c0 appears by name.
        assert!(json.contains("\"c0\":3"));
        assert!(!json.contains("\"c1\""));
    }

    #[test]
    fn hostile_names_are_escaped() {
        let trace = Trace {
            events: vec![event("a\"b\\c\n", SpanKind::Mark, 0, 0)],
            dropped: 0,
        };
        let json = trace.to_chrome_json();
        assert!(json.contains("a\\\"b\\\\c\\u000a"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = Trace::default().to_chrome_json();
        assert!(json.contains("\"traceEvents\":[]"));
    }
}
