//! The undecidability construction in action (§6): solve `L_M` for a
//! halting machine (anchored execution tables, `O(log* n)`) and for a
//! looping machine (global 3-colouring fallback).
//!
//! ```sh
//! cargo run --release --example turing_tiles
//! ```

use lcl_grids::core::lm::{render_types, LmProblem, LmStrategy};
use lcl_grids::grid::Torus2;
use lcl_grids::local::IdAssignment;
use lcl_grids::turing::machines;

fn main() {
    // A machine that halts after 3 steps.
    let machine = machines::unary_counter(2);
    println!("machine: {}", machine.name());
    let table = machine.run(1_000).expect_halted();
    println!("execution table ({} steps):\n{table}", table.steps());

    let problem = LmProblem::new(machine);
    let n = 36;
    let torus = Torus2::square(n);
    let ids = IdAssignment::Shuffled { seed: 99 }.materialise(n * n);
    let sol = problem.solve(&torus, &ids, 1_000);
    problem.check(&torus, &sol.labels).expect("valid labelling");
    match sol.strategy {
        LmStrategy::Anchored { steps } => {
            println!("solved with anchored tables (machine halts in {steps} steps)")
        }
        LmStrategy::GlobalColouring => println!("solved with the global P1 fallback"),
    }
    println!("round ledger:\n{}", sol.rounds);
    println!("tile types (anchors 'a', payload upper-case):");
    println!("{}", render_types(&torus, &sol.labels));

    // A machine that never halts: only the global branch remains.
    let looper = LmProblem::new(machines::loop_forever());
    let sol = looper.solve(&torus, &ids, 10_000);
    looper.check(&torus, &sol.labels).expect("valid fallback");
    assert_eq!(sol.strategy, LmStrategy::GlobalColouring);
    println!("loop-forever machine: fell back to the global 3-colouring (Θ(n)).");
}
