//! The speed-up theorem as an executable transformation (Theorem 2,
//! Figure 1): wrap a black-box `o(n)`-time algorithm into the normal form
//! `A′ ∘ S_k` and watch the round ledger.
//!
//! ```sh
//! cargo run --release --example normal_form_lab
//! ```

use lcl_grids::core::speedup::{choose_k, speedup, RowColeVishkin};
use lcl_grids::local::{log_star, GridInstance, IdAssignment};

fn main() {
    let inner = RowColeVishkin;
    let k = choose_k(&inner);
    println!("inner algorithm: row Cole–Vishkin (T = 10 rounds)");
    println!("chosen constant: k = {k} (smallest even k ≥ 4 with T(k) < k/4 − 4)\n");

    for n in [128usize, 192, 256] {
        let inst = GridInstance::new(n, &IdAssignment::Shuffled { seed: n as u64 });
        let run = speedup(&inner, &inst);
        // Validate: labels are a proper 3-colouring of every row cycle.
        let torus = inst.torus();
        let valid = (0..torus.node_count()).all(|v| {
            let p = torus.pos(v);
            let e = torus.index(torus.step(p, lcl_grids::grid::Dir4::East));
            run.labels[v] < 3 && run.labels[v] != run.labels[e]
        });
        println!(
            "n = {n:>4} (log* n = {}): valid = {valid}, rounds = {}",
            log_star(n as u64),
            run.rounds.total()
        );
    }
    println!("\nthe ledger is dominated by S_k/2 (anchor MIS); the simulation of");
    println!("the inner algorithm costs a constant number of rounds.");
}
