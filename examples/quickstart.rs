//! Quickstart: synthesise an optimal `O(log* n)` algorithm for vertex
//! 4-colouring (§7's flagship example) and run it on a torus.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lcl_grids::core::problems;
use lcl_grids::core::synthesis::{synthesize, SynthesisConfig};
use lcl_grids::local::{GridInstance, IdAssignment};

fn main() {
    // The problem: proper vertex 4-colouring of the oriented torus.
    let problem = problems::vertex_colouring(4);

    // §7: synthesis fails for k = 1 and 2, succeeds at k = 3 with 7×5
    // windows (2079 realizable tiles).
    for k in 1..=2 {
        let outcome = synthesize(&problem, &SynthesisConfig::for_k(k));
        println!("k = {k}: {}", if outcome.is_some() { "SAT" } else { "UNSAT" });
    }
    let algo = synthesize(&problem, &SynthesisConfig::for_k(3)).expect("k = 3 succeeds");
    println!(
        "k = 3: SAT with {} tiles of shape {}",
        algo.table_len(),
        algo.shape()
    );

    // Run the normal form A' ∘ S_3 on a 64×64 torus.
    let instance = GridInstance::new(64, &IdAssignment::Shuffled { seed: 2026 });
    let run = algo.run(&instance);
    problem
        .check(&instance.torus(), &run.labels)
        .expect("synthesised algorithms are provably correct");
    println!("\n64×64 torus coloured; round ledger:\n{}", run.rounds);

    // Show a corner of the colouring.
    let torus = instance.torus();
    println!("south-west 12×6 corner of the colouring:");
    for y in (0..6).rev() {
        let row: String = (0..12)
            .map(|x| {
                char::from(b'0' + run.labels[torus.index(lcl_grids::grid::Pos::new(x, y))] as u8)
            })
            .collect();
        println!("  {row}");
    }
}
