//! Quickstart: the unified engine API. One `ProblemSpec`, one `Engine`,
//! one `solve` — the registry picks the best algorithm family and the
//! labelling comes back validated, with its LOCAL-round ledger attached.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lcl_grids::engine::{Engine, ProblemSpec, SolveError};
use lcl_grids::grid::Pos;
use lcl_grids::local::{GridInstance, IdAssignment};

fn main() -> Result<(), SolveError> {
    // The problem: proper vertex 4-colouring of the oriented torus
    // (§7's flagship example, Θ(log* n)).
    let engine = Engine::builder()
        .problem(ProblemSpec::vertex_colouring(4))
        .build()?;
    println!("problem: {}", engine.problem());
    println!("solver plan (best first): {:?}\n", engine.solver_names());

    // Solve a 64×64 torus. The ball-carving construction of §8 applies at
    // this size; smaller tori would transparently fall back to synthesis
    // or the SAT baseline.
    let instance = GridInstance::new(64, &IdAssignment::Shuffled { seed: 2026 });
    let labelling = engine.solve(&instance)?;
    println!(
        "64x64 torus coloured by `{}` (validated: {}); ledger:\n{}",
        labelling.report.solver, labelling.report.validated, labelling.report.rounds
    );
    if let Some((phase, cost)) = labelling.report.rounds.dominant_phase() {
        println!("dominant phase: {phase} ({cost} rounds)\n");
    }

    // Show a corner of the colouring.
    let torus = instance.torus();
    println!("south-west 12x6 corner of the colouring:");
    for y in (0..6).rev() {
        let row: String = (0..12)
            .map(|x| char::from(b'0' + labelling.labels[torus.index(Pos::new(x, y))] as u8))
            .collect();
        println!("  {row}");
    }

    // Failures are typed values, not panics: 2-colouring on an odd torus.
    let two = Engine::builder()
        .problem(ProblemSpec::vertex_colouring(2))
        .max_synthesis_k(1)
        .build()?;
    let odd = GridInstance::new(5, &IdAssignment::Sequential);
    match two.solve(&odd) {
        Err(SolveError::Unsolvable { .. }) => {
            println!("\n2-colouring the 5x5 torus: correctly reported unsolvable")
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }

    // Batches amortise the expensive shared work (synthesis is memoised
    // in the engine's registry).
    let batch: Vec<GridInstance> = (0..4)
        .map(|seed| GridInstance::new(32, &IdAssignment::Shuffled { seed }))
        .collect();
    let report = engine.solve_batch(&batch);
    println!("\nbatch of four 32x32 instances: {report}");
    Ok(())
}
