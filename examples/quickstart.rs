//! Quickstart: problems as data, one shared engine for all of them.
//!
//! An LCL problem is just a set of window constraints — so it can arrive
//! as *text*, and a single problem-agnostic [`Engine`] can serve many
//! problems at once. This example builds one engine, prepares several
//! problems on it (an `lcl-lang` definition compiled to block normal
//! form, named library problems, a d-dimensional palette), solves through
//! the prepared handles, and finishes with a mixed-problem batch and a
//! stream.
//!
//! ```sh
//! cargo run --release -p lcl-grids --example quickstart
//! ```

use lcl_grids::engine::{Engine, Instance, Job, ProblemSpec, SolveError};
use lcl_grids::grid::Pos;
use lcl_grids::local::IdAssignment;

/// Proper vertex 5-colouring, written down instead of baked in. The
/// compiler lowers it to 2×2 block normal form; the registry routes it
/// through §7 synthesis, which finds a Θ(log* n) algorithm.
const FIVE_COLOURING: &str = "
problem vertex-5-colouring {
  alphabet { c0, c1, c2, c3, c4 }
  edges differ
}";

fn main() -> Result<(), SolveError> {
    // One engine for the whole process: it owns the registry, caches,
    // and worker pool — problems are prepared on it per call.
    let engine = Engine::builder().max_synthesis_k(2).threads(2).build();

    // 1. A problem compiled from source text, prepared once.
    let spec = ProblemSpec::compile(FIVE_COLOURING).expect("the DSL source is well-formed");
    let five = engine.prepare(&spec)?;
    println!("prepared problem: {}", five.spec());
    println!("solver plan (best first): {:?}", five.solver_names());
    // Preparing a problem also runs the `lcl-analyze` lint pass; the
    // prepared handle memoises the report (`lclc --lint` prints the same
    // diagnostics with caret-rendered source spans).
    if let Some(analysis) = five.analysis() {
        for diag in analysis.diagnostics() {
            println!("lint {}[{}]: {}", diag.severity, diag.code, diag.message);
        }
    }
    let inst = Instance::square(24, &IdAssignment::Shuffled { seed: 2026 });
    let labelling = five.solve(&inst)?;
    println!(
        "24x24 torus coloured by `{}` (validated: {}); {} rounds\n",
        labelling.report.solver,
        labelling.report.validated,
        labelling.report.rounds.total()
    );

    // 2. The named library on the same engine: 4-colouring through the
    // hand-built §8 ball-carving construction at scale.
    let four = engine.prepare(&ProblemSpec::vertex_colouring(4))?;
    let instance = Instance::square(64, &IdAssignment::Shuffled { seed: 2026 });
    let labelling = four.solve(&instance)?;
    println!(
        "64x64 torus coloured by `{}`; ledger:\n{}",
        labelling.report.solver, labelling.report.rounds
    );
    let torus = instance.as_torus2().expect("built as a 2-d torus").torus();
    println!("south-west 12x6 corner of the colouring:");
    for y in (0..6).rev() {
        let row: String = (0..12)
            .map(|x| char::from(b'0' + labelling.labels[torus.index(Pos::new(x, y))] as u8))
            .collect();
        println!("  {row}");
    }

    // 3. Topology is a dispatch dimension: edge 2d-colouring on a
    // 3-dimensional torus rides the registered Theorem 21 construction.
    // `engine.solve` is the prepare-and-memoise convenience.
    let cube = Instance::torus_d(3, 6, &IdAssignment::Shuffled { seed: 2026 });
    let cube_labelling = engine.solve(&ProblemSpec::edge_colouring(6), &cube)?;
    println!(
        "\n6x6x6 torus edge-6-coloured by `{}` (validated: {})",
        cube_labelling.report.solver, cube_labelling.report.validated
    );

    // 4. Failures are typed values, not panics — including for compiled
    // problems: 2-colouring (three DSL lines) is exactly unsolvable on
    // odd tori, in two *and* three dimensions (the latter via the
    // d-dimensional SAT existence route for pairwise problems).
    let two = engine.prepare(
        &ProblemSpec::compile("problem two-colouring { alphabet { black, white } edges differ }")
            .expect("well-formed"),
    )?;
    for odd in [
        Instance::square(5, &IdAssignment::Sequential),
        Instance::torus_d(3, 3, &IdAssignment::Sequential),
    ] {
        match two.solve(&odd) {
            Err(SolveError::Unsolvable { dims, .. }) => {
                println!("2-colouring the {odd}: correctly reported unsolvable ({dims:?})")
            }
            other => println!("unexpected outcome: {other:?}"),
        }
    }

    // 5. Batches amortise the shared work (synthesis and prepared plans
    // are memoised) — and may mix topologies *and problems*; dedup is
    // namespaced per problem, so identical instances under different
    // problems never share a labelling.
    let mut batch: Vec<Instance> = (0..4)
        .map(|seed| Instance::square(32, &IdAssignment::Shuffled { seed }))
        .collect();
    batch.push(Instance::torus_d(
        2,
        32,
        &IdAssignment::Shuffled { seed: 0 },
    )); // dedups onto entry 0
    let report = engine.solve_batch(&four, &batch);
    println!("\nbatch of five 32x32 instances (one a TorusD twin): {report}");

    // 6. Streaming: an *iterator* of mixed-problem jobs drained through a
    // bounded channel — constant memory however long the stream.
    let stream_jobs = (0..64u64).map(move |seed| {
        let prepared = if seed % 2 == 0 { &four } else { &five };
        Job::new(
            prepared.clone(),
            Instance::square(24, &IdAssignment::Shuffled { seed }),
        )
    });
    let solved = engine
        .solve_stream(stream_jobs)
        .filter(|outcome| outcome.result.is_ok())
        .count();
    println!("streamed 64 interleaved 4-/5-colouring jobs: {solved} solved");
    Ok(())
}
