//! Quickstart: the unified engine API. One `ProblemSpec`, one `Instance`,
//! one `solve` — the registry picks the best algorithm family for the
//! `(problem, topology)` pair and the labelling comes back validated,
//! with its LOCAL-round ledger attached.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lcl_grids::engine::{Engine, Instance, ProblemSpec, SolveError};
use lcl_grids::grid::Pos;
use lcl_grids::local::IdAssignment;

fn main() -> Result<(), SolveError> {
    // The problem: proper vertex 4-colouring of the oriented torus
    // (§7's flagship example, Θ(log* n)).
    let engine = Engine::builder()
        .problem(ProblemSpec::vertex_colouring(4))
        .build()?;
    println!("problem: {}", engine.problem());
    println!("solver plan (best first): {:?}\n", engine.solver_names());

    // Solve a 64×64 torus. The ball-carving construction of §8 applies at
    // this size; smaller tori would transparently fall back to synthesis
    // or the SAT baseline.
    let instance = Instance::square(64, &IdAssignment::Shuffled { seed: 2026 });
    let labelling = engine.solve(&instance)?;
    println!(
        "64x64 torus coloured by `{}` (validated: {}); ledger:\n{}",
        labelling.report.solver, labelling.report.validated, labelling.report.rounds
    );
    if let Some((phase, cost)) = labelling.report.rounds.dominant_phase() {
        println!("dominant phase: {phase} ({cost} rounds)\n");
    }

    // Show a corner of the colouring.
    let torus = instance.as_torus2().expect("built as a 2-d torus").torus();
    println!("south-west 12x6 corner of the colouring:");
    for y in (0..6).rev() {
        let row: String = (0..12)
            .map(|x| char::from(b'0' + labelling.labels[torus.index(Pos::new(x, y))] as u8))
            .collect();
        println!("  {row}");
    }

    // Topology is a dispatch dimension: the same API solves edge
    // 2d-colouring on a 3-dimensional torus through the registered
    // Theorem 21 construction.
    let cube_engine = Engine::builder()
        .problem(ProblemSpec::edge_colouring(6))
        .max_synthesis_k(1)
        .build()?;
    let cube = Instance::torus_d(3, 6, &IdAssignment::Shuffled { seed: 2026 });
    let cube_labelling = cube_engine.solve(&cube)?;
    println!(
        "\n6x6x6 torus edge-6-coloured by `{}` (validated: {})",
        cube_labelling.report.solver, cube_labelling.report.validated
    );

    // Failures are typed values, not panics: 2-colouring on an odd torus,
    // and a (problem, topology) pair with no registered solver.
    let two = Engine::builder()
        .problem(ProblemSpec::vertex_colouring(2))
        .max_synthesis_k(1)
        .build()?;
    let odd = Instance::square(5, &IdAssignment::Sequential);
    match two.solve(&odd) {
        Err(SolveError::Unsolvable { .. }) => {
            println!("\n2-colouring the 5x5 torus: correctly reported unsolvable")
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }
    match two.solve(&cube) {
        Err(SolveError::UnsupportedTopology { topology, .. }) => {
            println!("2-colouring a {topology}: correctly reported unsupported")
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // Batches amortise the expensive shared work (synthesis is memoised
    // in the engine's registry) — and may mix topologies freely.
    let mut batch: Vec<Instance> = (0..4)
        .map(|seed| Instance::square(32, &IdAssignment::Shuffled { seed }))
        .collect();
    batch.push(Instance::torus_d(
        2,
        32,
        &IdAssignment::Shuffled { seed: 0 },
    )); // dedups onto entry 0
    let report = engine.solve_batch(&batch);
    println!("\nbatch of five 32x32 instances (one a TorusD twin): {report}");
    Ok(())
}
