//! `lclc` — the `lcl-lang` compiler driver: parse → compile → report.
//!
//! Reads an `.lcl` problem definition, lowers it to radius-1 block normal
//! form, prints the compiled problem and its complexity class, and solves
//! an instance through the engine:
//!
//! ```sh
//! cargo run --release --example lclc -- fixtures/no_mono_3x3.lcl
//! cargo run --release --example lclc -- path/to/problem.lcl 12
//! ```
//!
//! The optional second argument is the torus side (default 8). Parse,
//! semantic, and compile errors are rendered with their source span.

use lcl_grids::engine::{Engine, Instance, ProblemSpec, SolveError};
use lcl_grids::grid::Pos;
use lcl_grids::local::IdAssignment;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(path) => path,
        None => {
            eprintln!("usage: lclc <problem.lcl> [torus-side]");
            return ExitCode::FAILURE;
        }
    };
    let side: usize = match args.next().map(|s| s.parse()) {
        None => 8,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("the torus side must be a positive integer");
            return ExitCode::FAILURE;
        }
    };

    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match lcl_grids::lang::compile(&src) {
        Ok(compiled) => compiled,
        Err(e) => {
            eprintln!("{}", e.render(&src));
            return ExitCode::FAILURE;
        }
    };
    println!("compiled: {compiled}");
    let blocks = compiled.block_lcl().sorted_blocks();
    print!("normal form (first blocks, sw,se,nw,ne):");
    for block in blocks.iter().take(8) {
        print!(" {block:?}");
    }
    if blocks.len() > 8 {
        print!(" … ({} more)", blocks.len() - 8);
    }
    println!();

    let spec = ProblemSpec::compiled(&compiled);
    let engine = Engine::builder().max_synthesis_k(2).build();
    let prepared = match engine.prepare(&spec) {
        Ok(prepared) => prepared,
        Err(e) => {
            eprintln!("error: cannot prepare the problem: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The canonical compiled form is what the plan memo and synthesis
    // cache are keyed by: recompiling the same source always lands on
    // this key (and thus on the same prepared plan).
    println!("plan cache key: {}", prepared.cache_key());
    match prepared.classify() {
        Ok(class) => println!("classification: {class:?}"),
        Err(e) => println!("classification: unavailable ({e})"),
    }

    let inst = Instance::square(side, &IdAssignment::Shuffled { seed: 2026 });
    match prepared.solve(&inst) {
        Ok(labelling) => {
            println!(
                "solved the {side}x{side} torus with `{}` in {} rounds (validated: {})",
                labelling.report.solver,
                labelling.report.rounds.total(),
                labelling.report.validated,
            );
            if side <= 16 {
                let torus = inst.as_torus2().expect("built as a 2-d torus").torus();
                println!("labelling (decoded to source labels, north row first):");
                for y in (0..side).rev() {
                    let row: Vec<&str> = (0..side)
                        .map(|x| {
                            let label = labelling.labels[torus.index(Pos::new(x, y))];
                            compiled.decode_name(label).unwrap_or("?")
                        })
                        .collect();
                    println!("  {}", row.join(" "));
                }
            }
        }
        Err(e @ SolveError::Unsolvable { .. }) => {
            println!("exact verdict: {e}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
