//! `lclc` — the `lcl-lang` compiler driver: parse → compile → lint →
//! report.
//!
//! Reads an `.lcl` problem definition, lowers it to radius-1 block normal
//! form, runs the `lcl-analyze` semantic lint pass, prints the compiled
//! problem and its complexity class, and solves an instance through the
//! engine:
//!
//! ```sh
//! cargo run --release --example lclc -- fixtures/no_mono_3x3.lcl
//! cargo run --release --example lclc -- path/to/problem.lcl 12
//! cargo run --release --example lclc -- --lint path/to/problem.lcl
//! cargo run --release --example lclc -- --lint --deny warn problem.lcl
//! ```
//!
//! The optional second positional argument is the torus side (default 8).
//! `--lint` stops after printing the analysis diagnostics; `--deny
//! <note|warn|error>` exits nonzero when any diagnostic at or above that
//! severity fires. Sources may declare intentional diagnostics with
//! `# expect: L001, L002` comment lines: expected codes are exempt from
//! `--deny`, and an expected code that does *not* fire is itself an
//! error. Parse, semantic, and compile errors are rendered with their
//! source span.
//!
//! ```text
//! $ lclc --lint --deny warn fixtures/dead_label_colouring.lcl
//! warning[L001] at line 8, column 23: dead label: `d` occurs in no
//! allowed window and was pruned from the compiled alphabet
//!   |    alphabet { a, b, c, d }
//!   |                        ^
//! note[L005] at line 7, column 9: axis-decomposable: the block
//! predicate factors into independent horizontal and vertical pair
//! relations (one symmetric relation on both axes)
//!   |  problem dead-label-colouring {
//!   |          ^^^^^^^^^^^^^^^^^^^^
//! ...
//! lint: 3 diagnostics in dead-label-colouring
//! ```
//! (exit 0 there because the fixture's `# expect:` lines cover every
//! warning; without them the L001 would be denied with exit 1).

use lcl_grids::analyze::{expected_codes, Severity};
use lcl_grids::engine::{Engine, Instance, ProblemSpec, SolveError};
use lcl_grids::grid::Pos;
use lcl_grids::local::IdAssignment;
use std::collections::BTreeSet;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: lclc [--lint] [--deny <note|warn|error>] <problem.lcl> [torus-side]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut lint_only = false;
    let mut deny: Option<Severity> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lint" => lint_only = true,
            "--deny" => {
                let Some(level) = args.next() else {
                    eprintln!("error: --deny needs a level (note, warn, or error)");
                    return usage();
                };
                match level.parse::<Severity>() {
                    Ok(level) => deny = Some(level),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return usage();
                    }
                }
            }
            _ if arg.starts_with("--") => {
                eprintln!("error: unknown flag {arg}");
                return usage();
            }
            _ => positional.push(arg),
        }
    }
    let (path, side) = match positional.as_slice() {
        [path] => (path.clone(), 8usize),
        [path, side] => match side.parse::<usize>() {
            Ok(n) if n > 0 => (path.clone(), n),
            _ => {
                eprintln!("the torus side must be a positive integer");
                return ExitCode::FAILURE;
            }
        },
        _ => return usage(),
    };

    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analyzed = match lcl_grids::analyze::compile(&src) {
        Ok(analyzed) => analyzed,
        Err(e) => {
            eprintln!("{}", e.render(&src));
            return ExitCode::FAILURE;
        }
    };
    let compiled = &analyzed.compiled;
    let analysis = &analyzed.analysis;

    // The lint report: every diagnostic with its caret-rendered span.
    for diag in analysis.diagnostics() {
        println!("{}", diag.render(&src));
    }

    // `# expect:` annotations declare intentional diagnostics: they are
    // exempt from --deny, and an expected code that never fires is an
    // error in its own right (a stale annotation).
    let expected = expected_codes(&src);
    let fired: BTreeSet<_> = analysis.diagnostics().iter().map(|d| d.code).collect();
    let mut denied = false;
    for code in &expected {
        if !fired.contains(code) {
            println!("error: expected diagnostic {code} did not fire");
            denied = true;
        }
    }
    if let Some(level) = deny {
        for diag in analysis.diagnostics() {
            if diag.severity >= level && !expected.contains(&diag.code) {
                println!(
                    "error: denied lint {} at severity {}",
                    diag.code, diag.severity
                );
                denied = true;
            }
        }
    }
    if denied {
        return ExitCode::FAILURE;
    }
    if lint_only {
        let n = analysis.diagnostics().len();
        println!(
            "lint: {n} diagnostic{} in {}",
            if n == 1 { "" } else { "s" },
            compiled.name()
        );
        return ExitCode::SUCCESS;
    }

    println!("compiled: {compiled}");
    let blocks = compiled.block_lcl().sorted_blocks();
    print!("normal form (first blocks, sw,se,nw,ne):");
    for block in blocks.iter().take(8) {
        print!(" {block:?}");
    }
    if blocks.len() > 8 {
        print!(" … ({} more)", blocks.len() - 8);
    }
    println!();

    let spec = ProblemSpec::compiled(compiled);
    let engine = Engine::builder().max_synthesis_k(2).build();
    let prepared = match engine.prepare(&spec) {
        Ok(prepared) => prepared,
        Err(e) => {
            eprintln!("error: cannot prepare the problem: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The canonical compiled form is what the plan memo and synthesis
    // cache are keyed by: recompiling the same source always lands on
    // this key (and thus on the same prepared plan).
    println!("plan cache key: {}", prepared.cache_key());
    match prepared.classify() {
        Ok(class) => println!("classification: {class:?}"),
        Err(e) => println!("classification: unavailable ({e})"),
    }

    let inst = Instance::square(side, &IdAssignment::Shuffled { seed: 2026 });
    match prepared.solve(&inst) {
        Ok(labelling) => {
            println!(
                "solved the {side}x{side} torus with `{}` in {} rounds (validated: {})",
                labelling.report.solver,
                labelling.report.rounds.total(),
                labelling.report.validated,
            );
            if side <= 16 {
                let torus = inst.as_torus2().expect("built as a 2-d torus").torus();
                println!("labelling (decoded to source labels, north row first):");
                for y in (0..side).rev() {
                    let row: Vec<&str> = (0..side)
                        .map(|x| {
                            let label = labelling.labels[torus.index(Pos::new(x, y))];
                            compiled.decode_name(label).unwrap_or("?")
                        })
                        .collect();
                    println!("  {}", row.join(" "));
                }
            }
        }
        Err(e @ SolveError::Unsolvable { .. }) => {
            println!("exact verdict: {e}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
