//! Figure 2 live: classify cycle LCLs from their output neighbourhood
//! graphs and run the synthesised optimal algorithms.
//!
//! ```sh
//! cargo run --release --example cycle_playground
//! ```

use lcl_grids::core::cycles::{
    classify, synthesize_cycle_algorithm, CycleClass, CycleLcl, NeighbourhoodGraph,
};
use lcl_grids::grid::CycleGraph;
use lcl_grids::local::IdAssignment;

fn show(name: &str, problem: &CycleLcl) {
    let h = NeighbourhoodGraph::build(problem);
    let class = classify(problem);
    let desc = match &class {
        CycleClass::Constant { label } => format!("O(1), constant label {label}"),
        CycleClass::LogStar { state, flexibility } => format!(
            "Θ(log* n), flexible state {:?} with flexibility {}",
            h.state(*state),
            flexibility
        ),
        CycleClass::Global => "Θ(n)".to_string(),
    };
    println!("{name:<22} |H| = {:<3} class: {desc}", h.len());

    if let Some(algo) = synthesize_cycle_algorithm(problem) {
        let n = 1000;
        let cycle = CycleGraph::new(n);
        let ids = IdAssignment::Shuffled { seed: 17 }.materialise(n);
        let run = algo.run(&cycle, &ids);
        assert!(problem.check(&cycle, &run.labels));
        println!(
            "{:<22} synthesised run on n = {n}: valid, {} rounds",
            "",
            run.rounds.total()
        );
    }
}

fn main() {
    println!("LCL problems on directed cycles (Figure 2):\n");
    show("3-colouring", &CycleLcl::colouring(3));
    show("maximal ind. set", &CycleLcl::mis());
    show("2-colouring", &CycleLcl::colouring(2));
    show("independent set", &CycleLcl::independent_set());
}
