//! The colouring atlas: reproduces the §1.3 classification rows for
//! vertex and edge colourings by combining the synthesis oracle with the
//! per-`n` SAT existence solver.
//!
//! ```sh
//! cargo run --release --example colour_atlas
//! ```

use lcl_grids::core::classify::{probe, GridClass};
use lcl_grids::core::{existence, problems};
use lcl_grids::grid::Torus2;

fn class_name(c: &GridClass) -> &'static str {
    match c {
        GridClass::Constant => "O(1)",
        GridClass::LogStar => "Θ(log* n)  [synthesis certificate]",
        GridClass::Global => "Θ(n) / unsolvable  [no certificate at this k]",
    }
}

fn main() {
    println!("Vertex colouring (paper: global for k ≤ 3, log* for k ≥ 4):");
    for k in 2..=6u16 {
        let p = problems::vertex_colouring(k);
        let budget = if k >= 4 { 3 } else { 2 };
        let (class, algo) = probe(&p, budget);
        let odd = existence::solvable(&p, &Torus2::square(5));
        println!(
            "  {:>2} colours: {:<45} solvable at n=5: {:<5} {}",
            k,
            class_name(&class),
            odd,
            algo.map(|a| format!("(k = {}, {} tiles)", a.k(), a.table_len()))
                .unwrap_or_default()
        );
    }

    println!("\nEdge colouring (paper: global for k ≤ 4, log* for k ≥ 5):");
    for k in 3..=6u16 {
        let p = problems::edge_colouring(k);
        let (class, algo) = probe(&p, 2);
        let odd = existence::solvable(&p, &Torus2::square(5));
        println!(
            "  {:>2} colours: {:<45} solvable at n=5: {:<5} {}",
            k,
            class_name(&class),
            odd,
            algo.map(|a| format!("(k = {}, {} tiles)", a.k(), a.table_len()))
                .unwrap_or_default()
        );
    }
}
