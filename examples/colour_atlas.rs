//! The colouring atlas: reproduces the §1.3 classification rows for
//! vertex and edge colourings through the engine — classification via the
//! memoised synthesis oracle, existence via the exact SAT baseline.
//!
//! ```sh
//! cargo run --release --example colour_atlas
//! ```

use lcl_grids::core::classify::GridClass;
use lcl_grids::engine::{Engine, Instance, ProblemSpec, Registry};
use lcl_grids::grid::Torus2;
use std::sync::Arc;

fn class_name(c: &GridClass) -> &'static str {
    match c {
        GridClass::Constant => "O(1)",
        GridClass::LogStar => "Θ(log* n)  [synthesis certificate]",
        GridClass::Global => "Θ(n) / unsolvable  [no certificate at this k]",
    }
}

fn row(registry: &Arc<Registry>, spec: ProblemSpec, max_k: usize) {
    let engine = Engine::builder()
        .problem(spec)
        .max_synthesis_k(max_k)
        .registry(Arc::clone(registry))
        .build()
        .expect("colouring problems always have a plan");
    let class = engine.classify().expect("torus problem");
    let odd = engine
        .solvable(&Instance::from(Torus2::square(5)))
        .expect("torus problem");
    println!(
        "  {:<22} {:<45} solvable at n=5: {odd}",
        engine.problem().name(),
        class_name(&class),
    );
}

fn main() {
    // One registry for the whole atlas: every synthesis outcome is
    // memoised and shared across the engines built below.
    let registry = Arc::new(Registry::new());

    println!("Vertex colouring (paper: global for k ≤ 3, log* for k ≥ 4):");
    for k in 2..=6u16 {
        let budget = if k >= 4 { 3 } else { 2 };
        row(&registry, ProblemSpec::vertex_colouring(k), budget);
    }

    println!("\nEdge colouring (paper: global for k ≤ 4, log* for k ≥ 5):");
    for k in 3..=6u16 {
        row(&registry, ProblemSpec::edge_colouring(k), 2);
    }

    println!(
        "\n{} synthesis outcomes memoised in the shared registry",
        registry.cached_syntheses()
    );
}
