//! The colouring atlas: reproduces the §1.3 classification rows for
//! vertex and edge colourings through the engine — classification via the
//! memoised synthesis oracle, existence via the exact SAT baseline.
//!
//! ```sh
//! cargo run --release --example colour_atlas
//! ```

use lcl_grids::core::classify::GridClass;
use lcl_grids::engine::{Engine, Instance, ProblemSpec};
use lcl_grids::grid::Torus2;

fn class_name(c: &GridClass) -> &'static str {
    match c {
        GridClass::Constant => "O(1)",
        GridClass::LogStar => "Θ(log* n)  [synthesis certificate]",
        GridClass::Global => "Θ(n) / unsolvable  [no certificate at this k]",
    }
}

fn row(engine: &Engine, spec: ProblemSpec) {
    let prepared = engine
        .prepare(&spec)
        .expect("colouring problems always have a plan");
    let class = prepared.classify().expect("torus problem");
    let odd = prepared
        .solvable(&Instance::from(Torus2::square(5)))
        .expect("torus problem");
    println!(
        "  {:<22} {:<45} solvable at n=5: {odd}",
        prepared.spec().name(),
        class_name(&class),
    );
}

fn main() {
    // Two engines sharing one registry: the deep one gives the k = 3
    // synthesis budget to the rows that need a certificate at that
    // spacing (vertex k ≥ 4), the quick one keeps the global rows cheap.
    // Plans and synthesis outcomes memoise per engine and registry.
    let registry = std::sync::Arc::new(lcl_grids::engine::Registry::new());
    let quick = Engine::builder()
        .max_synthesis_k(2)
        .registry(std::sync::Arc::clone(&registry))
        .build();
    let deep = Engine::builder()
        .max_synthesis_k(3)
        .registry(std::sync::Arc::clone(&registry))
        .build();

    println!("Vertex colouring (paper: global for k ≤ 3, log* for k ≥ 4):");
    for k in 2..=6u16 {
        let engine = if k >= 4 { &deep } else { &quick };
        row(engine, ProblemSpec::vertex_colouring(k));
    }

    println!("\nEdge colouring (paper: global for k ≤ 4, log* for k ≥ 5):");
    for k in 3..=6u16 {
        row(&quick, ProblemSpec::edge_colouring(k));
    }

    println!(
        "\n{} synthesis outcomes memoised in the shared registry; {} + {} plans prepared",
        registry.cached_syntheses(),
        quick.prepared_plans(),
        deep.prepared_plans()
    );
}
