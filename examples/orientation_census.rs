//! The Theorem 22 census: classifies all 32 `X`-orientation problems
//! through the engine and checks them against the theorem's prediction.
//!
//! ```sh
//! cargo run --release --example orientation_census
//! ```

use lcl_grids::algorithms::orientations::{predicted_class, OrientationClass};
use lcl_grids::core::problems::XSet;
use lcl_grids::engine::{Engine, Instance, ProblemSpec, Registry};
use lcl_grids::grid::Torus2;
use std::sync::Arc;

fn main() {
    let registry = Arc::new(Registry::new());
    println!("X-orientation classification (Theorem 22):");
    println!(
        "{:<12} {:>10} {:>14} {:>14}",
        "X", "predicted", "engine", "solvable n=5"
    );
    let mut agreements = 0;
    for x in XSet::all() {
        let engine = Engine::builder()
            .problem(ProblemSpec::orientation(x))
            .max_synthesis_k(1) // Lemma 23: k = 1 suffices for the log* rows
            .registry(registry.clone())
            .build()
            .expect("orientations always have a plan");
        let predicted = predicted_class(x);
        let class = engine.classify().expect("torus problem");
        let solvable_odd = engine
            .solvable(&Instance::from(Torus2::square(5)))
            .expect("torus problem");
        agreements += predicted.agrees_with(&class) as usize;
        let predicted_str = match predicted {
            OrientationClass::Trivial => "Θ(1)",
            OrientationClass::LogStar => "Θ(log* n)",
            OrientationClass::Global => "global",
        };
        println!(
            "{:<12} {:>10} {:>14} {:>14}",
            x.to_string(),
            predicted_str,
            format!("{class:?}"),
            solvable_odd
        );
    }
    println!("\nengine classification agreed with Theorem 22 on {agreements}/32 rows");
}
