//! The Theorem 22 census: classifies all 32 `X`-orientation problems.
//!
//! ```sh
//! cargo run --release --example orientation_census
//! ```

use lcl_grids::algorithms::orientations::{census, OrientationClass};

fn main() {
    println!("X-orientation classification (Theorem 22):");
    println!("{:<12} {:>10} {:>14} {:>14}", "X", "predicted", "probe", "solvable n=5");
    for row in census(1) {
        let predicted = match row.predicted {
            OrientationClass::Trivial => "Θ(1)",
            OrientationClass::LogStar => "Θ(log* n)",
            OrientationClass::Global => "global",
        };
        let probe = format!("{:?}", row.probe);
        println!(
            "{:<12} {:>10} {:>14} {:>14}",
            row.x.to_string(),
            predicted,
            probe,
            row.solvable_odd_5
        );
    }
}
