//! The Theorem 22 census: classifies all 32 `X`-orientation problems
//! through the engine and checks them against the theorem's prediction.
//!
//! ```sh
//! cargo run --release --example orientation_census
//! ```

use lcl_grids::algorithms::orientations::{predicted_class, OrientationClass};
use lcl_grids::core::problems::XSet;
use lcl_grids::engine::{Engine, Instance, ProblemSpec};
use lcl_grids::grid::Torus2;

fn main() {
    // One engine for the whole census: all 32 plans prepare on it.
    let engine = Engine::builder()
        .max_synthesis_k(1) // Lemma 23: k = 1 suffices for the log* rows
        .build();
    println!("X-orientation classification (Theorem 22):");
    println!(
        "{:<12} {:>10} {:>14} {:>14}",
        "X", "predicted", "engine", "solvable n=5"
    );
    let mut agreements = 0;
    for x in XSet::all() {
        let prepared = engine
            .prepare(&ProblemSpec::orientation(x))
            .expect("orientations always have a plan");
        let predicted = predicted_class(x);
        let class = prepared.classify().expect("torus problem");
        let solvable_odd = prepared
            .solvable(&Instance::from(Torus2::square(5)))
            .expect("torus problem");
        agreements += predicted.agrees_with(&class) as usize;
        let predicted_str = match predicted {
            OrientationClass::Trivial => "Θ(1)",
            OrientationClass::LogStar => "Θ(log* n)",
            OrientationClass::Global => "global",
        };
        println!(
            "{:<12} {:>10} {:>14} {:>14}",
            x.to_string(),
            predicted_str,
            format!("{class:?}"),
            solvable_odd
        );
    }
    println!("\nengine classification agreed with Theorem 22 on {agreements}/32 rows");
}
