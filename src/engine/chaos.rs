//! Deterministic, seed-driven fault injection.
//!
//! The robustness claims elsewhere in this crate — "a corrupt cache file
//! silently falls back to resynthesis", "a panicking solver neither takes
//! down the process nor poisons the shared caches" — are only claims
//! until a fault actually fires. This module makes faults first-class:
//! a [`ChaosState`] is compiled into every engine but is inert unless
//! armed (via [`crate::engine::EngineBuilder::chaos_seed`] or an explicit
//! [`ChaosConfig`]), and when armed it injects faults on a schedule that
//! is a pure function of `(seed, fault point, per-point counter)` — two
//! runs with the same seed and the same call sequence inject the *same*
//! faults at the *same* points, so chaos tests are reproducible and every
//! injected fault can be reconciled against an observed typed error or a
//! recovery counter.
//!
//! Fault points:
//!
//! * [`FaultPoint::PersistRead`] — a synthesis-cache disk read "fails"
//!   (the load is skipped, exactly as an I/O error degrades: cache miss,
//!   resynthesis).
//! * [`FaultPoint::PersistWrite`] — a synthesis-cache disk write "fails"
//!   (the save is skipped; future processes pay time, not correctness).
//! * [`FaultPoint::SolvePanic`] — the solver dispatch panics, exercising
//!   the batch/stream/serve `catch_unwind` containment paths.
//! * [`FaultPoint::SolveLatency`] — artificial per-tier latency, for
//!   deadline and breaker testing.
//! * [`FaultPoint::DedupPoison`] — a stream dedup-window entry is
//!   corrupted after insertion, exercising the checksum-recovery path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The instrumented fault points, in counter-array order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Synthesis-cache disk read.
    PersistRead,
    /// Synthesis-cache disk write.
    PersistWrite,
    /// Solver dispatch panic.
    SolvePanic,
    /// Artificial solver latency.
    SolveLatency,
    /// Stream dedup-window entry corruption.
    DedupPoison,
}

/// Number of distinct fault points.
const POINTS: usize = 5;

impl FaultPoint {
    const ALL: [FaultPoint; POINTS] = [
        FaultPoint::PersistRead,
        FaultPoint::PersistWrite,
        FaultPoint::SolvePanic,
        FaultPoint::SolveLatency,
        FaultPoint::DedupPoison,
    ];

    fn index(self) -> usize {
        match self {
            FaultPoint::PersistRead => 0,
            FaultPoint::PersistWrite => 1,
            FaultPoint::SolvePanic => 2,
            FaultPoint::SolveLatency => 3,
            FaultPoint::DedupPoison => 4,
        }
    }

    /// Stable counter name, used in `/metrics` and test assertions.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::PersistRead => "persist_read",
            FaultPoint::PersistWrite => "persist_write",
            FaultPoint::SolvePanic => "solve_panic",
            FaultPoint::SolveLatency => "solve_latency",
            FaultPoint::DedupPoison => "dedup_poison",
        }
    }

    /// Per-point salt mixed into the schedule so the points fire
    /// independently of each other.
    fn salt(self) -> u64 {
        // FNV-1a over the point name: stable across builds.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.name().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// What to inject and how often. `None`/`0` disables a point. A period of
/// `p` fires *pseudo-randomly* at rate `1/p` on a schedule fully
/// determined by the seed; `panic_at` instead fires *exactly once*, at
/// the given 1-based dispatch ordinal (the "panic at the Nth solve"
/// knob).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Fire `PersistRead` at rate `1/p`.
    pub persist_read_period: Option<u64>,
    /// Fire `PersistWrite` at rate `1/p`.
    pub persist_write_period: Option<u64>,
    /// Fire `SolvePanic` at rate `1/p`.
    pub solve_panic_period: Option<u64>,
    /// Fire `SolvePanic` exactly once, at this 1-based solver dispatch.
    pub panic_at: Option<u64>,
    /// Fire `SolveLatency` at rate `1/p`.
    pub solve_latency_period: Option<u64>,
    /// The injected latency when `SolveLatency` fires.
    pub solve_latency: Duration,
    /// Fire `DedupPoison` at rate `1/p`.
    pub dedup_poison_period: Option<u64>,
}

impl ChaosConfig {
    /// A config with every point disabled (but the state still armed and
    /// counting) — the base for targeted single-fault tests.
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            persist_read_period: None,
            persist_write_period: None,
            solve_panic_period: None,
            panic_at: None,
            solve_latency_period: None,
            solve_latency: Duration::from_millis(1),
            dedup_poison_period: None,
        }
    }

    /// The default battery armed by `--chaos-seed` and
    /// [`crate::engine::EngineBuilder::chaos_seed`]: every point enabled
    /// at a cadence a soak test meets within seconds, mild enough that a
    /// healthy server stays live throughout.
    pub fn from_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            persist_read_period: Some(3),
            persist_write_period: Some(3),
            solve_panic_period: Some(7),
            panic_at: None,
            solve_latency_period: Some(5),
            solve_latency: Duration::from_millis(2),
            dedup_poison_period: Some(3),
        }
    }
}

/// SplitMix64: the mixing function behind the schedule. Full-period,
/// statistically solid, two multiplies — cheap enough for hot paths.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The armed fault injector: per-point dispatch counters plus per-point
/// injected-fault counters (the ledger tests reconcile against observed
/// typed errors). `Send + Sync`; one per engine, shared with the
/// registry's synthesis cache and the stream dedup window.
pub struct ChaosState {
    config: ChaosConfig,
    /// How many times each point has been consulted.
    counters: [AtomicU64; POINTS],
    /// How many times each point actually fired.
    injected: [AtomicU64; POINTS],
}

impl ChaosState {
    /// Arms a fault injector with an explicit config.
    pub fn new(config: ChaosConfig) -> ChaosState {
        ChaosState {
            config,
            counters: Default::default(),
            injected: Default::default(),
        }
    }

    /// Arms the default battery for a seed (see [`ChaosConfig::from_seed`]).
    pub fn from_seed(seed: u64) -> ChaosState {
        ChaosState::new(ChaosConfig::from_seed(seed))
    }

    /// The config this state was armed with.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    fn period(&self, point: FaultPoint) -> Option<u64> {
        match point {
            FaultPoint::PersistRead => self.config.persist_read_period,
            FaultPoint::PersistWrite => self.config.persist_write_period,
            FaultPoint::SolvePanic => self.config.solve_panic_period,
            FaultPoint::SolveLatency => self.config.solve_latency_period,
            FaultPoint::DedupPoison => self.config.dedup_poison_period,
        }
    }

    /// Consults the schedule at a fault point: advances the point's
    /// counter and reports whether the fault fires at this ordinal. The
    /// decision is a pure function of `(seed, point, ordinal)` — calling
    /// sequences that consult the same points in the same order get the
    /// same schedule, whatever threads they run on.
    pub fn should(&self, point: FaultPoint) -> bool {
        let i = point.index();
        let ordinal = self.counters[i].fetch_add(1, Ordering::Relaxed) + 1;
        let fires = if point == FaultPoint::SolvePanic && self.config.panic_at.is_some() {
            self.config.panic_at == Some(ordinal)
        } else {
            match self.period(point) {
                Some(p) if p > 0 => {
                    splitmix64(self.config.seed ^ point.salt() ^ ordinal).is_multiple_of(p)
                }
                _ => false,
            }
        };
        if fires {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// The latency to inject if `SolveLatency` fires at this ordinal.
    pub fn latency(&self) -> Option<Duration> {
        self.should(FaultPoint::SolveLatency)
            .then_some(self.config.solve_latency)
    }

    /// Panics (deterministically, per the schedule) at the solver
    /// dispatch point — the injected fault the `catch_unwind` containment
    /// paths must absorb. The payload names the point so observed panics
    /// can be attributed to the injector.
    pub fn maybe_panic(&self, tier: &str) {
        if self.should(FaultPoint::SolvePanic) {
            let n = self.injected(FaultPoint::SolvePanic);
            panic!("chaos: injected panic #{n} in solver {tier}");
        }
    }

    /// How many times a point has fired.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()].load(Ordering::Relaxed)
    }

    /// How many times a point has been consulted (fired or not).
    pub fn consulted(&self, point: FaultPoint) -> u64 {
        self.counters[point.index()].load(Ordering::Relaxed)
    }

    /// Every point's injected-fault count, in stable name order — the
    /// rows `/metrics` exports and the soak test reconciles.
    pub fn injected_counts(&self) -> Vec<(&'static str, u64)> {
        FaultPoint::ALL
            .iter()
            .map(|&p| (p.name(), self.injected(p)))
            .collect()
    }

    /// Total injected faults across every point.
    pub fn injected_total(&self) -> u64 {
        FaultPoint::ALL.iter().map(|&p| self.injected(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ChaosState::from_seed(42);
        let b = ChaosState::from_seed(42);
        let fire_a: Vec<bool> = (0..200)
            .map(|_| a.should(FaultPoint::PersistRead))
            .collect();
        let fire_b: Vec<bool> = (0..200)
            .map(|_| b.should(FaultPoint::PersistRead))
            .collect();
        assert_eq!(fire_a, fire_b);
        assert_eq!(
            a.injected(FaultPoint::PersistRead),
            b.injected(FaultPoint::PersistRead)
        );
        // The cadence is real: rate 1/3 over 200 consultations fires
        // dozens of times, not zero and not always.
        let fired = a.injected(FaultPoint::PersistRead);
        assert!(fired > 20 && fired < 180, "fired {fired}/200");
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosState::from_seed(1);
        let b = ChaosState::from_seed(2);
        let fire_a: Vec<bool> = (0..200).map(|_| a.should(FaultPoint::SolvePanic)).collect();
        let fire_b: Vec<bool> = (0..200).map(|_| b.should(FaultPoint::SolvePanic)).collect();
        assert_ne!(fire_a, fire_b);
    }

    #[test]
    fn points_fire_independently() {
        let s = ChaosState::from_seed(7);
        let reads: Vec<bool> = (0..64).map(|_| s.should(FaultPoint::PersistRead)).collect();
        let writes: Vec<bool> = (0..64)
            .map(|_| s.should(FaultPoint::PersistWrite))
            .collect();
        // Same period, same seed, same ordinals — but different salts.
        assert_ne!(reads, writes);
    }

    #[test]
    fn panic_at_exact_ordinal() {
        let mut config = ChaosConfig::quiet(9);
        config.panic_at = Some(3);
        let s = ChaosState::new(config);
        assert!(!s.should(FaultPoint::SolvePanic));
        assert!(!s.should(FaultPoint::SolvePanic));
        assert!(s.should(FaultPoint::SolvePanic));
        assert!(!s.should(FaultPoint::SolvePanic));
        assert_eq!(s.injected(FaultPoint::SolvePanic), 1);
    }

    #[test]
    fn quiet_config_never_fires() {
        let s = ChaosState::new(ChaosConfig::quiet(5));
        for _ in 0..100 {
            assert!(!s.should(FaultPoint::DedupPoison));
            s.maybe_panic("tier");
        }
        assert_eq!(s.injected_total(), 0);
        assert_eq!(s.consulted(FaultPoint::SolvePanic), 100);
    }
}
