//! Solver adapters and the `(problem, topology)` → solver registry.
//!
//! The registry owns the resolution policy "best available first", per
//! topology family: a constant labelling when one exists (`O(1)`), then
//! the hand-built §8/§10 constructions, then §7 normal-form synthesis
//! (memoised per problem), then the d-dimensional constructions of
//! Theorem 21, and finally the SAT-backed existence solver — the `Θ(n)`
//! baseline that is exact but slow. Every solver declares the topology
//! family it accepts ([`TopologySupport`]); the
//! [`crate::engine::Engine`] walks this plan, skips solvers whose
//! capabilities reject the instance, and falls through on typed errors.
//! Corner coordination and the d-dimensional algorithms are first-class
//! registered solvers, not side doors.

use super::chaos::{ChaosState, FaultPoint};
use super::error::SolveError;
use super::instance::Instance;
use super::spec::{ProblemSpec, Topology};
use super::{
    budget_error, Capabilities, Complexity, Labelling, Solve, SolveReport, TopologySupport,
};
use lcl_algorithms::corner::{self, BoundaryGrid};
use lcl_algorithms::ddim;
use lcl_algorithms::edge_colouring::EdgeColouring;
use lcl_algorithms::four_colouring::FourColouring;
use lcl_algorithms::{AlgoError, Profile};
use lcl_core::problems::XSet;
use lcl_core::synthesis::{
    persist, synthesize_auto, synthesize_auto_budgeted, SynthRunError, SynthesizedAlgorithm,
};
use lcl_core::{existence, GridProblem};
use lcl_grid::{Metric, TorusD};
use lcl_local::{GridInstance, Rounds};
use lcl_sat::{Budget, BudgetExceeded};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Options the registry consults when planning solvers for a problem.
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Parameter profile for the hand-built constructions.
    pub profile: Profile,
    /// Largest anchor spacing `k` synthesis may try.
    pub max_synthesis_k: usize,
    /// Seed for the SAT fallback's branching phases (solution sampling).
    pub seed: Option<u64>,
}

impl Default for PlanOptions {
    fn default() -> PlanOptions {
        PlanOptions {
            profile: Profile::Practical,
            max_synthesis_k: 3,
            seed: None,
        }
    }
}

/// Where a cached synthesis outcome originally came from, as recorded in
/// the in-memory memo and surfaced in solver reports (`synth_origin`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthOrigin {
    /// Loaded from the persistent on-disk cache — no SAT call ran in this
    /// process.
    Disk,
    /// Produced by running the SAT synthesis in this process.
    Sat,
}

impl SynthOrigin {
    fn as_str(self) -> &'static str {
        match self {
            SynthOrigin::Disk => "disk",
            SynthOrigin::Sat => "sat",
        }
    }

    /// Trace-counter code for the synthesis span's `origin` slot:
    /// `0` = in-process memo, `1` = disk cache, `2` = fresh SAT run.
    fn trace_code(self) -> u64 {
        match self {
            SynthOrigin::Disk => 1,
            SynthOrigin::Sat => 2,
        }
    }
}

/// Marks a synthesis-cache answer on the current trace: `origin` uses
/// the [`SynthOrigin::trace_code`] encoding (0 = memo hit).
fn mark_synth_cache(origin: u64) {
    lcl_trace::mark(
        lcl_trace::SpanKind::Synthesis,
        "synthesis-cache",
        [0, origin, 0, 0],
    );
}

/// Aggregate counters of the synthesis cache: how often a request was
/// answered from the in-process memo, the persistent disk cache, or by
/// actually running the SAT synthesis. Benchmarks and tests use these to
/// prove that a warm cache eliminates the SAT call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Requests answered from the in-process memo.
    pub memory_hits: u64,
    /// Outcomes loaded from the persistent disk cache.
    pub disk_hits: u64,
    /// SAT synthesis runs actually performed.
    pub synthesised: u64,
}

/// A memoised synthesis outcome plus its provenance.
#[derive(Clone)]
pub(crate) struct CachedSynth {
    pub(crate) outcome: Option<SynthesizedAlgorithm>,
    pub(crate) origin: SynthOrigin,
}

/// Memoised synthesis results, shared by every engine built from the same
/// registry: synthesising `A′` is expensive (it is a SAT call over all
/// realizable tiles), while running it is cheap, so batch workloads must
/// pay the cost once.
///
/// Three design points matter for the batch path:
///
/// * **Single-flight**: each key maps to an `Arc<OnceLock>`, so when a
///   parallel batch goes cold, exactly one worker synthesises while the
///   others block on the cell — never N redundant SAT calls.
/// * **Panic containment**: the `Mutex` guards only brief map accesses and
///   every lock recovers from poisoning via [`PoisonError::into_inner`];
///   a panic inside a synthesis closure leaves the `OnceLock` vacant, so
///   later solves simply retry instead of dying on a poisoned cache.
/// * **Persistence**: with a cache directory configured, outcomes
///   (including negative "no normal form up to k" verdicts, the costliest
///   to recompute) are content-addressed on disk and survive restarts;
///   corrupt, mismatched, or previous-version files silently fall back to
///   resynthesis.
#[derive(Default)]
pub(crate) struct SynthCache {
    map: Mutex<HashMap<String, Arc<OnceLock<CachedSynth>>>>,
    dir: Mutex<Option<PathBuf>>,
    /// Armed fault injector, if any (see [`super::chaos`]): persist
    /// read/write faults are injected here, at the same call sites a real
    /// I/O error would surface.
    chaos: Mutex<Option<Arc<ChaosState>>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    synthesised: AtomicU64,
}

/// The stable name of the synthesis adapter, used by
/// [`crate::engine::Engine::classify`] to tell certified hand-built
/// `O(log* n)` solvers apart from the conditional synthesis path.
pub(crate) const SYNTHESIS_SOLVER_NAME: &str = "synthesised-tiles";

/// True iff §7 synthesis applies: every structured problem, and generic
/// block LCLs with alphabets the CNF encoder tabulates (≤ 8).
fn synthesisable(problem: &GridProblem) -> bool {
    !matches!(problem, GridProblem::Block(b) if b.alphabet() > 8)
}

pub(crate) use persist::fnv1a64;

/// The canonical cache key of a problem: the name alone is not enough,
/// because two different custom [`GridProblem::Block`] LCLs may be
/// registered under the same free-form name in a shared registry.
///
/// Keys carry a trailing topology tag (`+t2`: synthesis runs on the 2-d
/// block normal form) so that mixed-topology engines sharing one cache
/// directory can never alias outcomes across topologies. Adding the tag
/// changed the key schema, so the on-disk format version was bumped in
/// lockstep (`LCLSYN01` → `LCLSYN02`, see `lcl_core::synthesis::persist`):
/// pre-tag cache files fail the version check and are silently
/// resynthesised over.
fn cache_key(problem: &GridProblem, name: &str, max_k: usize) -> String {
    match problem {
        // Block problems are content-addressed by their tabulated allowed
        // set; everything else is fully determined by its canonical name.
        GridProblem::Block(b) => {
            let mut blocks: Vec<_> = b.allowed_blocks().collect();
            blocks.sort_unstable();
            let content = std::iter::once(b.alphabet())
                .chain(blocks.into_iter().flatten())
                .flat_map(|l| l.to_le_bytes());
            format!("{name}#{:016x}@k{max_k}+t2", fnv1a64(content))
        }
        _ => format!("{name}@k{max_k}+t2"),
    }
}

/// The on-disk file for a cache key: content-addressed by a stable hash of
/// the key (the key itself is re-verified inside the file on load, so a
/// file-name collision degrades to a cache miss, never a wrong table).
fn synth_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("synth-{:016x}.bin", fnv1a64(key.bytes())))
}

impl SynthCache {
    /// Loads a cached outcome from disk, honouring an armed injector:
    /// a chaos read fault degrades exactly like a real I/O error — cache
    /// miss, resynthesis.
    fn load_from_disk(&self, dir: &Path, key: &str) -> Option<Option<SynthesizedAlgorithm>> {
        if let Some(chaos) = self.chaos() {
            if chaos.should(FaultPoint::PersistRead) {
                return None;
            }
        }
        persist::load_outcome(&synth_path(dir, key), key)
    }

    /// Saves an outcome to disk (best-effort: an unwritable cache dir —
    /// or a chaos write fault — costs future time, not correctness).
    fn save_to_disk(&self, dir: &Path, key: &str, outcome: &Option<SynthesizedAlgorithm>) {
        if let Some(chaos) = self.chaos() {
            if chaos.should(FaultPoint::PersistWrite) {
                return;
            }
        }
        let _ = persist::save_outcome(&synth_path(dir, key), key, outcome);
    }

    /// Returns the cached synthesis outcome for `spec` at `max_k`,
    /// loading it from disk or synthesising on the first request.
    fn get_or_synthesize(&self, problem: &GridProblem, name: &str, max_k: usize) -> CachedSynth {
        let key = cache_key(problem, name, max_k);
        let cell = Arc::clone(
            self.lock_map()
                .entry(key.clone())
                .or_insert_with(|| Arc::new(OnceLock::new())),
        );
        if let Some(hit) = cell.get() {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            mark_synth_cache(0);
            return hit.clone();
        }
        // Single-flight initialisation: concurrent requests for the same
        // key block here while one of them fills the cell; requests for
        // *different* keys proceed independently (the map lock above is
        // only held for the entry lookup, never across a SAT call).
        let mut initialised_here = false;
        let hit = cell.get_or_init(|| {
            initialised_here = true;
            let dir = self.cache_dir();
            if let Some(dir) = &dir {
                if let Some(outcome) = self.load_from_disk(dir, &key) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return CachedSynth {
                        outcome,
                        origin: SynthOrigin::Disk,
                    };
                }
            }
            let outcome = synthesize_auto(problem, max_k);
            self.synthesised.fetch_add(1, Ordering::Relaxed);
            if let Some(dir) = &dir {
                self.save_to_disk(dir, &key, &outcome);
            }
            CachedSynth {
                outcome,
                origin: SynthOrigin::Sat,
            }
        });
        if !initialised_here {
            // We blocked while another thread filled the cell: served from
            // memory, as far as this request is concerned. Keeps
            // memory_hits + disk_hits + synthesised == total requests.
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
        }
        mark_synth_cache(if initialised_here {
            hit.origin.trace_code()
        } else {
            0
        });
        hit.clone()
    }

    /// The budget-aware variant of [`SynthCache::get_or_synthesize`].
    ///
    /// The crucial difference is *where* the computation runs: a budgeted
    /// synthesis is computed **outside** the `OnceLock`, and the cell is
    /// filled only when the computation *completes*. A budget trip
    /// mid-synthesis therefore returns `Err` without caching anything —
    /// the next request (with a roomier budget) retries from an intact
    /// cache, instead of reading a spurious "no normal form up to k"
    /// verdict that was really just an interrupted search.
    fn get_or_synthesize_budgeted(
        &self,
        problem: &GridProblem,
        name: &str,
        max_k: usize,
        budget: &Budget,
    ) -> Result<CachedSynth, BudgetExceeded> {
        if budget.is_unlimited() {
            return Ok(self.get_or_synthesize(problem, name, max_k));
        }
        let key = cache_key(problem, name, max_k);
        let cell = Arc::clone(
            self.lock_map()
                .entry(key.clone())
                .or_insert_with(|| Arc::new(OnceLock::new())),
        );
        if let Some(hit) = cell.get() {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            mark_synth_cache(0);
            return Ok(hit.clone());
        }
        budget.check()?;
        let dir = self.cache_dir();
        let computed = 'computed: {
            if let Some(dir) = &dir {
                if let Some(outcome) = self.load_from_disk(dir, &key) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    break 'computed CachedSynth {
                        outcome,
                        origin: SynthOrigin::Disk,
                    };
                }
            }
            let outcome = synthesize_auto_budgeted(problem, max_k, budget)?;
            self.synthesised.fetch_add(1, Ordering::Relaxed);
            if let Some(dir) = &dir {
                self.save_to_disk(dir, &key, &outcome);
            }
            CachedSynth {
                outcome,
                origin: SynthOrigin::Sat,
            }
        };
        // Fill the cell with the *completed* outcome. If a concurrent
        // unlimited request beat us to it, keep its value (the outcomes
        // are equal; budgeted callers trade the single-flight guarantee
        // for non-poisoning).
        mark_synth_cache(computed.origin.trace_code());
        Ok(cell.get_or_init(|| computed).clone())
    }

    fn lock_map(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<OnceLock<CachedSynth>>>> {
        // A panicking solver thread must not poison the cache for the rest
        // of the batch (or the process): recover the guard and continue.
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn cache_dir(&self) -> Option<PathBuf> {
        self.dir
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn set_cache_dir(&self, dir: Option<PathBuf>) {
        *self.dir.lock().unwrap_or_else(PoisonError::into_inner) = dir;
    }

    fn chaos(&self) -> Option<Arc<ChaosState>> {
        self.chaos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn set_chaos(&self, chaos: Option<Arc<ChaosState>>) {
        *self.chaos.lock().unwrap_or_else(PoisonError::into_inner) = chaos;
    }

    fn stats(&self) -> SynthStats {
        SynthStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            synthesised: self.synthesised.load(Ordering::Relaxed),
        }
    }

    fn len(&self) -> usize {
        self.lock_map()
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }
}

/// Maps a `(problem, topology)` pair to an ordered plan of [`Solve`]
/// implementations, best first. Also the home of the named problem
/// library and the shared synthesis cache.
#[derive(Default)]
pub struct Registry {
    synth_cache: Arc<SynthCache>,
}

impl Registry {
    /// A registry with the built-in solver families and an empty synthesis
    /// cache.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry whose synthesis cache is persisted under `dir`:
    /// synthesis outcomes are content-addressed there and survive process
    /// restarts. The directory is created on first write; corrupt or
    /// foreign files in it are ignored (and resynthesised over).
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Registry {
        let registry = Registry::default();
        registry.set_cache_dir(Some(dir.into()));
        registry
    }

    /// Points the synthesis cache at a persistence directory (`None`
    /// disables persistence). Affects future lookups only; the in-memory
    /// memo is kept.
    pub fn set_cache_dir(&self, dir: Option<PathBuf>) {
        self.synth_cache.set_cache_dir(dir);
    }

    /// Arms (or disarms, with `None`) the fault injector on this
    /// registry's synthesis-cache persistence paths. Set by
    /// [`crate::engine::EngineBuilder::chaos_seed`]; like the cache
    /// directory, it is registry state, so engines sharing a registry
    /// share the injector.
    pub(crate) fn set_chaos(&self, chaos: Option<Arc<ChaosState>>) {
        self.synth_cache.set_chaos(chaos);
    }

    /// Aggregate synthesis-cache counters (memo hits, disk hits, SAT
    /// synthesis runs) since this registry was created.
    pub fn synth_stats(&self) -> SynthStats {
        self.synth_cache.stats()
    }

    /// Number of problems with a memoised synthesis outcome.
    pub fn cached_syntheses(&self) -> usize {
        self.synth_cache.len()
    }

    /// The named problem library: every problem the paper classifies that
    /// the engine ships a solver for. Integration tests iterate this.
    pub fn problems() -> Vec<ProblemSpec> {
        vec![
            ProblemSpec::independent_set(),
            ProblemSpec::orientation(XSet::from_degrees(&[2])),
            ProblemSpec::vertex_colouring(3),
            ProblemSpec::vertex_colouring(4),
            ProblemSpec::vertex_colouring(5),
            ProblemSpec::edge_colouring(4),
            ProblemSpec::edge_colouring(5),
            ProblemSpec::orientation(XSet::from_degrees(&[1, 3, 4])),
            ProblemSpec::orientation(XSet::from_degrees(&[0, 1, 3])),
            ProblemSpec::orientation(XSet::from_degrees(&[1, 3])),
            ProblemSpec::orientation(XSet::from_degrees(&[0, 3, 4])),
            ProblemSpec::mis_with_pointers(),
            ProblemSpec::mis_power(Metric::L1, 2),
            ProblemSpec::corner_coordination(),
        ]
    }

    /// Resolves the ordered solver plan for a problem, covering every
    /// topology the problem has registered solvers on; the engine filters
    /// by the instance's topology at dispatch time. An empty plan means
    /// [`SolveError::NoSolver`].
    pub fn plan(&self, spec: &ProblemSpec, opts: &PlanOptions) -> Vec<Box<dyn Solve>> {
        let mut plan: Vec<Box<dyn Solve>> = Vec::new();
        if spec.home_topology() == Topology::Boundary {
            plan.push(Box::new(CornerSolver {
                problem: spec.name().to_string(),
            }));
            return plan;
        }
        if let Some((metric, k)) = spec.mis_power_params() {
            plan.push(Box::new(MisPowerSolver {
                problem: spec.name().to_string(),
                metric,
                k,
            }));
            plan.push(Box::new(GreedyMisDSolver {
                problem: spec.name().to_string(),
                metric,
                k,
            }));
            return plan;
        }
        let problem = match spec.grid_problem() {
            Some(p) => p,
            None => return plan,
        };
        if let Some(label) = problem.constant_solution() {
            plan.push(Box::new(ConstantSolver {
                problem: spec.name().to_string(),
                label,
                topology: if spec.constant_solution_on_any_torus() {
                    TopologySupport::AnyTorusD
                } else {
                    TopologySupport::Torus2
                },
            }));
        }
        match problem {
            GridProblem::VertexColouring { k: 4 } => plan.push(Box::new(BallCarvingSolver {
                problem: spec.name().to_string(),
                algo: FourColouring::new(opts.profile),
            })),
            GridProblem::EdgeColouring { k: 5 } => plan.push(Box::new(CutAndColourSolver {
                problem: spec.name().to_string(),
                algo: EdgeColouring::new(opts.profile),
            })),
            _ => {}
        }
        if synthesisable(problem) {
            plan.push(Box::new(SynthesisSolver {
                problem: spec.name().to_string(),
                grid_problem: problem.clone(),
                max_k: opts.max_synthesis_k,
                cache: Arc::clone(&self.synth_cache),
            }));
        }
        // Theorem 21's even-n edge 2d-colouring: the only registered
        // d ≥ 3 path for a block problem, and also an exact (and
        // CDCL-free) Θ(n) route for edge 2d-colouring of 2-d tori.
        if let GridProblem::EdgeColouring { k } = problem {
            if k % 2 == 0 && *k >= 4 {
                plan.push(Box::new(DdimEdgeSolver {
                    problem: spec.name().to_string(),
                    k: *k,
                }));
            }
        }
        // SAT existence: exact for every n, Θ(n) rounds, small alphabets
        // only for the generic encoder (≤ 16 *live* labels — dead ones
        // get no variables, so a pruned table may be encodable even when
        // the declared alphabet is not).
        let sat_encodable = !matches!(problem, GridProblem::Block(b) if b.live_labels().len() > 16);
        if sat_encodable {
            plan.push(Box::new(SatExistenceSolver {
                problem: spec.name().to_string(),
                grid_problem: problem.clone(),
                seed: opts.seed,
            }));
        }
        // Block problems whose predicate factors into one axis-symmetric
        // pair relation (vertex-colouring-like `lcl-lang` definitions,
        // independent sets) additionally get the d-dimensional SAT
        // existence route: exact solves and `Unsolvable` verdicts on
        // every torus dimension, not just d = 2. The relation table is
        // derived once here and carried by the solver.
        if let GridProblem::Block(b) = problem {
            if let Some(pairs) = b.axis_symmetric_pairs() {
                plan.push(Box::new(DdimPairwiseSatSolver {
                    problem: spec.name().to_string(),
                    alphabet: b.alphabet(),
                    pairs,
                }));
            }
        }
        plan
    }

    /// The canonical synthesis-cache key of a (torus block) problem at
    /// the given synthesis budget — the exact string the in-memory memo
    /// and the on-disk `LCLSYN02` cache are addressed by. Block problems
    /// are content-addressed from their canonical sorted block table, so
    /// two compilations of the same `lcl-lang` source (or a compiled
    /// problem and an identically-named hand-built table with the same
    /// blocks) report the same key. `None` for problems without a block
    /// form (corner coordination, MIS powers).
    pub fn synthesis_cache_key(&self, spec: &ProblemSpec, max_k: usize) -> Option<String> {
        spec.grid_problem()
            .map(|p| cache_key(p, spec.name(), max_k))
    }

    /// The canonical *plan* cache key of any problem at the given
    /// synthesis budget: the key [`Engine::prepare`] memoises prepared
    /// plans under and batch dedup namespaces groups by. For torus block
    /// problems this is exactly [`Registry::synthesis_cache_key`]
    /// (content-addressed, so two compilations of one `lcl-lang` source —
    /// or a compiled problem and an equal hand-built table — share one
    /// plan); problems without a block form (corner coordination, MIS
    /// powers) are addressed by their canonical constructor-assigned
    /// name.
    ///
    /// [`Engine::prepare`]: crate::engine::Engine::prepare
    pub fn plan_cache_key(&self, spec: &ProblemSpec, max_k: usize) -> String {
        self.synthesis_cache_key(spec, max_k)
            .unwrap_or_else(|| format!("{}@k{max_k}", spec.name()))
    }

    /// Memoised synthesis for a spec (the adapter [`Engine::classify`]
    /// and [`SynthesisSolver`] share), budget-aware: a
    /// budget trip returns `Err` *without* memoising anything (see
    /// [`SynthCache::get_or_synthesize_budgeted`]), so an interrupted
    /// search can never masquerade as a negative classification verdict.
    pub(crate) fn memoised_synthesis_budgeted(
        &self,
        spec: &ProblemSpec,
        max_k: usize,
        budget: &Budget,
    ) -> Result<Option<SynthesizedAlgorithm>, BudgetExceeded> {
        let Some(problem) = spec.grid_problem() else {
            return Ok(None);
        };
        if !synthesisable(problem) {
            return Ok(None);
        }
        Ok(self
            .synth_cache
            .get_or_synthesize_budgeted(problem, spec.name(), max_k, budget)?
            .outcome)
    }
}

/// Internal guard: the engine's capability filter must have routed a 2-d
/// instance here; anything else is an engine bug surfaced as a typed
/// error rather than a panic.
fn expect_torus2<'i>(inst: &'i Instance, solver: &str) -> Result<&'i GridInstance, SolveError> {
    inst.as_torus2().ok_or_else(|| SolveError::SolverFailed {
        solver: solver.to_string(),
        detail: format!("dispatched a {} to a 2-d torus solver", inst.topology()),
    })
}

/// The d-dimensional torus behind an instance: `TorusD` instances
/// directly, square 2-d instances as their `d = 2` reading.
fn torus_d_of(inst: &Instance, solver: &str) -> Result<TorusD, SolveError> {
    match inst {
        Instance::TorusD(di) => Ok(di.torus().clone()),
        Instance::Torus2(gi) if gi.torus().width() == gi.torus().height() => {
            Ok(TorusD::new(2, gi.torus().width()))
        }
        _ => Err(SolveError::SolverFailed {
            solver: solver.to_string(),
            detail: format!("dispatched a {} to a d-dimensional torus solver", inst),
        }),
    }
}

/// `O(1)`: output the constant label everywhere (§7 triviality criterion).
struct ConstantSolver {
    problem: String,
    label: u16,
    topology: TopologySupport,
}

impl Solve for ConstantSolver {
    fn name(&self) -> &str {
        "constant"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: self.topology,
            min_side: 1,
            square_only: false,
            complexity: Complexity::Constant,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let mut rounds = Rounds::new();
        rounds.charge("constant-output", 0);
        Ok(Labelling {
            labels: vec![self.label; inst.node_count()],
            report: SolveReport::new(&self.problem, self.name(), rounds),
        })
    }
}

fn algo_error(problem: &str, solver: &str, e: AlgoError) -> SolveError {
    match e {
        AlgoError::TorusTooSmall { min_side, side, .. } => SolveError::TorusTooSmall {
            problem: problem.to_string(),
            min_side,
            side,
        },
        AlgoError::EscalationExhausted { detail, .. } => SolveError::SolverFailed {
            solver: solver.to_string(),
            detail,
        },
    }
}

/// §8: vertex 4-colouring by ball carving, `O(log* n)`.
struct BallCarvingSolver {
    problem: String,
    algo: FourColouring,
}

impl Solve for BallCarvingSolver {
    fn name(&self) -> &str {
        "ball-carving-4-colouring"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::Torus2,
            min_side: self.algo.min_side(),
            square_only: true,
            complexity: Complexity::LogStar,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let inst = expect_torus2(inst, self.name())?;
        let run = self
            .algo
            .try_solve(inst)
            .map_err(|e| algo_error(&self.problem, self.name(), e))?;
        let report = SolveReport::new(&self.problem, self.name(), run.rounds)
            .with_detail("ell", run.ell)
            .with_detail("anchors", run.anchors)
            .with_detail("max_component", run.max_component);
        Ok(Labelling {
            labels: run.labels,
            report,
        })
    }
}

/// §10: edge 5-colouring via `j,k`-independent cut sets, `O(log* n)`.
struct CutAndColourSolver {
    problem: String,
    algo: EdgeColouring,
}

impl Solve for CutAndColourSolver {
    fn name(&self) -> &str {
        "cut-and-colour-5-edge-colouring"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::Torus2,
            min_side: self.algo.min_side(),
            square_only: true,
            complexity: Complexity::LogStar,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let inst = expect_torus2(inst, self.name())?;
        let run = self
            .algo
            .try_solve(inst)
            .map_err(|e| algo_error(&self.problem, self.name(), e))?;
        let report = SolveReport::new(&self.problem, self.name(), run.rounds)
            .with_detail("k", run.k)
            .with_detail("spacing", run.spacing)
            .with_detail("measured_j", run.measured_j);
        Ok(Labelling {
            labels: run.labels,
            report,
        })
    }
}

/// §7: the synthesised normal form `A′ ∘ S_k`, `O(log* n)`, memoised.
struct SynthesisSolver {
    problem: String,
    grid_problem: GridProblem,
    max_k: usize,
    cache: Arc<SynthCache>,
}

impl Solve for SynthesisSolver {
    fn name(&self) -> &str {
        SYNTHESIS_SOLVER_NAME
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::Torus2,
            // The smallest conceivable window frame (k = 1, 3×2 window);
            // the exact bound depends on the synthesised k and is checked
            // again in solve().
            min_side: 5,
            square_only: false,
            complexity: Complexity::LogStar,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let cached = self
            .cache
            .get_or_synthesize(&self.grid_problem, &self.problem, self.max_k);
        self.run_cached(inst, cached)
    }

    fn solve_budgeted(&self, inst: &Instance, budget: &Budget) -> Result<Labelling, SolveError> {
        let cached = self
            .cache
            .get_or_synthesize_budgeted(&self.grid_problem, &self.problem, self.max_k, budget)
            .map_err(|e| budget_error(self.name(), budget, e))?;
        self.run_cached(inst, cached)
    }
}

impl SynthesisSolver {
    /// Runs a (possibly just memoised) synthesis outcome on one instance.
    fn run_cached(&self, inst: &Instance, cached: CachedSynth) -> Result<Labelling, SolveError> {
        let inst = expect_torus2(inst, self.name())?;
        let origin = cached.origin;
        let algo = cached.outcome.ok_or_else(|| SolveError::SynthesisFailed {
            problem: self.problem.clone(),
            max_k: self.max_k,
        })?;
        let run = algo.try_run(inst).map_err(|e| match e {
            SynthRunError::TorusTooSmall { min_side, .. } => SolveError::TorusTooSmall {
                problem: self.problem.clone(),
                min_side,
                side: inst.torus().width().min(inst.torus().height()),
            },
            SynthRunError::UnrealizableWindow { at } => SolveError::SolverFailed {
                solver: self.name().to_string(),
                detail: format!("anchor window at {at} is not a realizable tile"),
            },
        })?;
        let report = SolveReport::new(&self.problem, self.name(), run.rounds)
            .with_detail("k", algo.k())
            .with_detail("window", algo.shape())
            .with_detail("table_len", algo.table_len())
            .with_detail("synth_origin", origin.as_str());
        Ok(Labelling {
            labels: run.labels,
            report,
        })
    }
}

/// Theorem 21: the even-`n` edge `2d`-colouring witness on d-dimensional
/// tori, with the exact parity impossibility for odd `n`. A centralised
/// construction (colours come from global coordinate parity), so it
/// charges the full gather like the SAT baseline — but needs no CDCL
/// call, and it is the only registered route for `d ≥ 3` block problems.
struct DdimEdgeSolver {
    problem: String,
    k: u16,
}

impl Solve for DdimEdgeSolver {
    fn name(&self) -> &str {
        "ddim-parity-edge-colouring"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::AnyTorusD,
            min_side: 2,
            square_only: true,
            complexity: Complexity::Linear,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let torus = torus_d_of(inst, self.name())?;
        let d = torus.dim();
        if usize::from(self.k) != 2 * d {
            return Err(SolveError::UnsupportedTopology {
                problem: self.problem.clone(),
                topology: inst.topology().to_string(),
                reason: format!(
                    "the parity construction colours with exactly 2d = {} colours, not {}",
                    2 * d,
                    self.k
                ),
            });
        }
        if torus.side() % 2 != 0 {
            // Exact: Theorem 21's counting argument rules out edge
            // 2d-colourings of odd-side tori in every dimension.
            return Err(SolveError::Unsolvable {
                problem: self.problem.clone(),
                dims: inst.dims(),
            });
        }
        let colouring = ddim::edge_2d_colouring_even(&torus);
        let labels = colouring
            .to_labels(self.k)
            .ok_or_else(|| SolveError::SolverFailed {
                solver: self.name().to_string(),
                detail: format!("{}^{} exceeds the label space", self.k, d),
            })?;
        let mut rounds = Rounds::new();
        // Coordinate parity is global information: gather the diameter.
        rounds.charge("gather-whole-grid", (d * (torus.side() / 2)) as u64);
        rounds.charge("parity-colouring", 0);
        let report = SolveReport::new(&self.problem, self.name(), rounds)
            .with_detail("d", d)
            .with_detail("palette", self.k);
        Ok(Labelling { labels, report })
    }
}

/// §8's anchor substrate on 2-d tori: distributed MIS of the
/// `metric`-power via Linial colour reduction, `O(log* n)` with the
/// power-graph simulation slowdown.
struct MisPowerSolver {
    problem: String,
    metric: Metric,
    k: usize,
}

impl Solve for MisPowerSolver {
    fn name(&self) -> &str {
        "power-mis-log-star"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::Torus2,
            min_side: 2,
            square_only: true,
            complexity: Complexity::LogStar,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let inst = expect_torus2(inst, self.name())?;
        let torus = inst.torus();
        let run = lcl_symmetry::mis_torus_power(&torus, self.metric, self.k, inst.ids());
        let labels = run.in_mis.iter().map(|&m| u16::from(m)).collect();
        let report = SolveReport::new(&self.problem, self.name(), run.rounds)
            .with_detail("metric", format!("{:?}", self.metric))
            .with_detail("k", self.k);
        Ok(Labelling { labels, report })
    }
}

/// The centralised greedy MIS sweep on d-dimensional torus powers
/// (`lcl_algorithms::ddim::greedy_mis`) — the deterministic reference
/// implementation of the anchor substrate `S_k`, exact on every
/// dimension but `Θ(n)` as a LOCAL algorithm (the sweep order is global).
struct GreedyMisDSolver {
    problem: String,
    metric: Metric,
    k: usize,
}

impl Solve for GreedyMisDSolver {
    fn name(&self) -> &str {
        "ddim-greedy-mis"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::AnyTorusD,
            min_side: 1,
            square_only: true,
            complexity: Complexity::Linear,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let torus = torus_d_of(inst, self.name())?;
        let marked = ddim::greedy_mis(&torus, self.metric, self.k);
        let labels = marked.iter().map(|&m| u16::from(m)).collect();
        let mut rounds = Rounds::new();
        rounds.charge(
            "gather-whole-grid",
            (torus.dim() * (torus.side() / 2)) as u64,
        );
        rounds.charge("greedy-sweep", 0);
        let report = SolveReport::new(&self.problem, self.name(), rounds)
            .with_detail("d", torus.dim())
            .with_detail("metric", format!("{:?}", self.metric))
            .with_detail("k", self.k)
            .with_detail("reference", "centralised greedy sweep");
        Ok(Labelling { labels, report })
    }
}

/// Appendix A.3: corner coordination on boundary grids, `Θ(√n)` —
/// registered like every other solver instead of living behind a
/// dedicated engine entry point. Labels encode each node's out-pointer:
/// 0 = none, 1 = north, 2 = east, 3 = south, 4 = west.
struct CornerSolver {
    problem: String,
}

impl Solve for CornerSolver {
    fn name(&self) -> &str {
        "boundary-paths"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::Boundary,
            min_side: 2,
            square_only: true,
            complexity: Complexity::SqrtN,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let grid: &BoundaryGrid = inst.as_boundary().ok_or_else(|| SolveError::SolverFailed {
            solver: self.name().to_string(),
            detail: format!(
                "dispatched a {} to the boundary-grid solver",
                inst.topology()
            ),
        })?;
        let forest = corner::solve_boundary_paths(grid);
        corner::check(grid, &forest).map_err(|detail| SolveError::SolverFailed {
            solver: self.name().to_string(),
            detail,
        })?;
        let labels = super::encode_forest(grid, &forest);
        let mut rounds = Rounds::new();
        // Proposition 28: radius 2√n = 2m exploration suffices.
        rounds.charge("corner-exploration", 2 * grid.side() as u64);
        Ok(Labelling {
            labels,
            report: SolveReport::new(&self.problem, self.name(), rounds),
        })
    }
}

/// The d-dimensional arm of the `Θ(n)` baseline, for block problems that
/// factor into one axis-symmetric pair relation
/// ([`lcl_core::lcl::BlockLcl::axis_symmetric_pairs`] — derived once at
/// plan time and carried here): gather the whole torus and hand the
/// pairwise CNF to the CDCL solver ([`existence::solve_pairwise_d`]).
/// Exact in every dimension — the route that extends `Unsolvable`
/// verdicts beyond Theorem 21 to compiled `lcl-lang` problems on d ≥ 3
/// tori.
struct DdimPairwiseSatSolver {
    problem: String,
    alphabet: u16,
    pairs: Vec<bool>,
}

impl Solve for DdimPairwiseSatSolver {
    fn name(&self) -> &str {
        "ddim-pairwise-sat"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::AnyTorusD,
            min_side: 1,
            square_only: true,
            complexity: Complexity::Linear,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        self.solve_budgeted(inst, &Budget::unlimited())
    }

    fn solve_budgeted(&self, inst: &Instance, budget: &Budget) -> Result<Labelling, SolveError> {
        let torus = torus_d_of(inst, self.name())?;
        let labels =
            existence::solve_pairwise_d_budgeted(&torus, self.alphabet, &self.pairs, budget)
                .map_err(|e| budget_error(self.name(), budget, e))?
                .ok_or_else(|| SolveError::Unsolvable {
                    problem: self.problem.clone(),
                    dims: inst.dims(),
                })?;
        let mut rounds = Rounds::new();
        // Gathering the full instance costs the torus diameter.
        rounds.charge(
            "gather-whole-grid",
            (torus.dim() * (torus.side() / 2)) as u64,
        );
        rounds.charge("central-sat-solve", 0);
        let report =
            SolveReport::new(&self.problem, self.name(), rounds).with_detail("d", torus.dim());
        Ok(Labelling { labels, report })
    }
}

/// The `Θ(n)` baseline: gather the whole grid and let the CDCL solver
/// produce a canonical solution; exact unsolvability proofs for free.
struct SatExistenceSolver {
    problem: String,
    grid_problem: GridProblem,
    seed: Option<u64>,
}

impl Solve for SatExistenceSolver {
    fn name(&self) -> &str {
        "sat-existence"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            topology: TopologySupport::Torus2,
            min_side: 1,
            square_only: false,
            complexity: Complexity::Linear,
        }
    }

    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        self.solve_budgeted(inst, &Budget::unlimited())
    }

    fn solve_budgeted(&self, inst: &Instance, budget: &Budget) -> Result<Labelling, SolveError> {
        let inst = expect_torus2(inst, self.name())?;
        let torus = inst.torus();
        let labels = existence::solve_budgeted(&self.grid_problem, &torus, self.seed, budget)
            .map_err(|e| budget_error(self.name(), budget, e))?
            .ok_or_else(|| SolveError::Unsolvable {
                problem: self.problem.clone(),
                dims: vec![torus.width(), torus.height()],
            })?;
        let mut rounds = Rounds::new();
        // Gathering the full instance costs the torus diameter.
        rounds.charge(
            "gather-whole-grid",
            (torus.width() / 2 + torus.height() / 2) as u64,
        );
        rounds.charge("central-sat-solve", 0);
        Ok(Labelling {
            labels,
            report: SolveReport::new(&self.problem, self.name(), rounds),
        })
    }
}
