//! The engine's census lookup table: answering `classify` from the
//! `lcl-atlas` artifact instead of the SAT synthesiser.
//!
//! An [`AtlasTable`] is a read-only index of a census artifact
//! (`fixtures/atlas/census-a*.jsonl`, written by the `atlas` bin — see
//! DESIGN.md §13). Arm an engine with one via
//! [`EngineBuilder::atlas`](super::EngineBuilder::atlas) and every
//! `prepare` canonicalises the spec's block table (label permutations,
//! transpose/reflection symmetries, dead-label pruning — the same
//! equivalence the census enumerator quotients by) and looks the
//! canonical form up by its census name. On a hit the prepared handle's
//! classification is seeded from the census — [`PreparedProblem::classify`]
//! (super::PreparedProblem::classify) answers without running synthesis —
//! and every solve report carries an `atlas` provenance detail naming
//! the census entry.
//!
//! ## Soundness of seeded verdicts
//!
//! `Constant` and `LogStar` census verdicts are certificates (a constant
//! solution, a synthesised algorithm) and transfer to any engine
//! configuration. A `Global` verdict is *relative to the census
//! synthesis budget* `k`: it asserts that synthesis failed for every
//! anchor spacing up to the census `max_synthesis_k`. It is therefore
//! seeded only into engines whose own `max_synthesis_k` is at most the
//! census one — a deeper engine could legitimately find a `log*`
//! algorithm the census missed, and must be allowed to try. `timeout`
//! and `unsolvable` census verdicts never seed a classification
//! (`unsolvable` problems still classify as `Global`, but the engine
//! re-derives that cheaply and keeps its richer typed error surface).

use super::spec::ProblemSpec;
use lcl_core::canonical;
use lcl_core::classify::GridClass;
use std::collections::HashMap;
use std::io::{self, BufRead};
use std::path::Path;

/// One census entry, as much of the artifact record as the engine needs.
#[derive(Clone, Debug)]
pub struct AtlasEntry {
    /// Census verdict: `classified`, `unsolvable`, or `timeout`.
    pub verdict: String,
    /// The classification, when the verdict is `classified`.
    pub class: Option<GridClass>,
}

/// The classification seed for one prepared problem: which census entry
/// matched and the class it pins.
#[derive(Clone, Debug)]
pub struct AtlasSeed {
    /// The census name of the problem's canonical form
    /// (`atlas-a{alphabet}-{hash:016x}`).
    pub name: String,
    /// The census classification.
    pub class: GridClass,
}

/// A read-only census lookup table, loaded from an `lcl-atlas` artifact.
#[derive(Debug)]
pub struct AtlasTable {
    /// The census synthesis budget (`max_synthesis_k` of the run that
    /// produced the artifact); bounds which engines may inherit `Global`
    /// verdicts.
    census_k: usize,
    entries: HashMap<String, AtlasEntry>,
}

impl AtlasTable {
    /// Loads a census artifact (JSON-lines: one header object, then one
    /// record per canonical problem, as written by the `atlas` bin).
    /// Malformed input is an [`io::ErrorKind::InvalidData`] error naming
    /// the offending line.
    pub fn load(path: impl AsRef<Path>) -> io::Result<AtlasTable> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)?;
        let mut lines = io::BufReader::new(file).lines();
        let header = lines
            .next()
            .transpose()?
            .ok_or_else(|| invalid(path, 1, "empty artifact (missing header line)"))?;
        if field_u64(&header, "atlas-census").is_none() {
            return Err(invalid(path, 1, "first line is not an atlas census header"));
        }
        let census_k = field_u64(&header, "max_synthesis_k")
            .ok_or_else(|| invalid(path, 1, "header lacks max_synthesis_k"))?
            as usize;
        let mut entries = HashMap::new();
        for (idx, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 2;
            let key = field_str(&line, "key")
                .ok_or_else(|| invalid(path, lineno, "record lacks a key field"))?
                .to_string();
            let verdict = field_str(&line, "verdict")
                .ok_or_else(|| invalid(path, lineno, "record lacks a verdict field"))?
                .to_string();
            let class = match field_str(&line, "class") {
                Some("constant") => Some(GridClass::Constant),
                Some("log-star") => Some(GridClass::LogStar),
                Some("global") => Some(GridClass::Global),
                Some(other) => {
                    return Err(invalid(path, lineno, &format!("unknown class {other:?}")))
                }
                None => None,
            };
            if verdict == "classified" && class.is_none() {
                return Err(invalid(path, lineno, "classified record lacks a class"));
            }
            entries.insert(key, AtlasEntry { verdict, class });
        }
        Ok(AtlasTable { census_k, entries })
    }

    /// Builds a table from parts — the in-process path used by tests and
    /// by `lcl-atlas` itself (census → table without a round-trip
    /// through disk).
    pub fn from_entries(
        census_k: usize,
        entries: impl IntoIterator<Item = (String, AtlasEntry)>,
    ) -> AtlasTable {
        AtlasTable {
            census_k,
            entries: entries.into_iter().collect(),
        }
    }

    /// The census synthesis budget recorded in the artifact header.
    pub fn census_k(&self) -> usize {
        self.census_k
    }

    /// Number of census entries loaded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks an entry up by its census name.
    pub fn get(&self, key: &str) -> Option<&AtlasEntry> {
        self.entries.get(key)
    }

    /// The census name of a spec's canonical form, when its block table
    /// canonicalises (at most [`canonical::MAX_ALPHABET`] live labels).
    pub fn census_name(spec: &ProblemSpec) -> Option<String> {
        canonical::census_name(&spec.to_block_lcl()?)
    }

    /// The classification seed for a spec under an engine with synthesis
    /// budget `engine_k`: canonicalise, look up, and apply the soundness
    /// gate (`Global` only transfers to engines with `engine_k ≤` the
    /// census `k`; see the module docs).
    pub fn seed_for(&self, spec: &ProblemSpec, engine_k: usize) -> Option<AtlasSeed> {
        let name = AtlasTable::census_name(spec)?;
        let entry = self.entries.get(&name)?;
        let class = entry.class.clone()?;
        if class == GridClass::Global && engine_k > self.census_k {
            return None;
        }
        Some(AtlasSeed { name, class })
    }
}

fn invalid(path: &Path, lineno: usize, message: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}:{lineno}: {message}", path.display()),
    )
}

/// Extracts a string field from one machine-written artifact line. The
/// artifact writer emits census names, verdicts, and class tags — short
/// strings over `[a-z0-9-]` — so a flat scan for `"field":"…"` is exact;
/// this is not a general JSON parser and does not need to be.
fn field_str<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts a non-negative integer field from one artifact line.
fn field_u64(line: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_scanners() {
        let line = r#"{"key":"atlas-a2-00ff","verdict":"classified","class":"log-star","n":42}"#;
        assert_eq!(field_str(line, "key"), Some("atlas-a2-00ff"));
        assert_eq!(field_str(line, "class"), Some("log-star"));
        assert_eq!(field_str(line, "missing"), None);
        assert_eq!(field_u64(line, "n"), Some(42));
        assert_eq!(field_u64(line, "key"), None);
    }

    #[test]
    fn global_verdicts_respect_the_k_gate() {
        let spec = ProblemSpec::vertex_colouring(2);
        let name = AtlasTable::census_name(&spec).expect("2-colouring canonicalises");
        let table = AtlasTable::from_entries(
            1,
            [(
                name.clone(),
                AtlasEntry {
                    verdict: "classified".to_string(),
                    class: Some(GridClass::Global),
                },
            )],
        );
        assert!(table.seed_for(&spec, 1).is_some(), "k within census budget");
        assert!(
            table.seed_for(&spec, 3).is_none(),
            "deeper engine must re-derive Global itself"
        );
    }
}
