//! The canonical problem representation the engine dispatches on.
//!
//! Every radius-1 LCL on oriented grids normalises to a set of allowed
//! 2×2 blocks (§3), so a [`ProblemSpec`] is fundamentally a
//! [`GridProblem`] plus a stable name; the named constructors tag the
//! problem library of [`lcl_core::problems`] so that the
//! [`Registry`](crate::engine::Registry) can recognise the problems with
//! hand-built algorithms. The spec is *topology-aware*: the registry
//! resolves solvers per `(problem, topology)` pair, and
//! [`ProblemSpec::check_instance`] validates a labelling on whichever
//! supported topology the [`Instance`] lives on — 2-d tori through the
//! block normal form, d-dimensional tori through the native §8/§10
//! validators, boundary grids through the corner-coordination rules.

use super::instance::Instance;
use lcl_algorithms::corner;
use lcl_analyze::Analysis;
use lcl_core::lcl::{Block, BlockLcl};
use lcl_core::problems::{self, XSet};
use lcl_core::{GridProblem, Label, Violation};
use lcl_grid::{Metric, Torus2, TorusD};
use lcl_lang::LangError;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// The topology an instance (or a problem family) lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Oriented two-dimensional tori — the paper's main setting.
    Torus2,
    /// Oriented d-dimensional tori (§8, §10, Theorem 21). `d = 2` is
    /// canonically equivalent to [`Topology::Torus2`] and is lowered to it
    /// by the engine.
    TorusD {
        /// The dimension `d ≥ 2`.
        d: usize,
    },
    /// Non-toroidal `m × m` grids with boundary (Appendix A.3).
    Boundary,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Torus2 => write!(f, "oriented 2-d torus"),
            Topology::TorusD { d } => write!(f, "oriented {d}-d torus"),
            Topology::Boundary => write!(f, "boundary grid"),
        }
    }
}

#[derive(Clone, Debug)]
enum SpecKind {
    Grid(GridProblem),
    MisPower { metric: Metric, k: usize },
    Corner,
}

/// A canonical, named LCL problem — the engine's single problem currency.
///
/// # Example
///
/// ```
/// use lcl_grids::engine::{ProblemSpec, Topology};
/// let spec = ProblemSpec::vertex_colouring(4);
/// assert_eq!(spec.name(), "vertex-4-colouring");
/// assert_eq!(spec.to_block_lcl().unwrap().alphabet(), 4);
/// // Edge 2d-colouring is meaningful on higher-dimensional tori too:
/// assert!(ProblemSpec::edge_colouring(6).supports(Topology::TorusD { d: 3 }));
/// assert!(!spec.supports(Topology::Boundary));
/// ```
#[derive(Clone, Debug)]
pub struct ProblemSpec {
    name: String,
    kind: SpecKind,
    /// The static analysis attached at construction (DSL paths carry a
    /// span-bearing one; the engine computes a span-free one at
    /// `prepare` time for raw block specs).
    analysis: Option<Arc<Analysis>>,
}

impl ProblemSpec {
    /// Proper vertex `k`-colouring (§1.3).
    pub fn vertex_colouring(k: u16) -> ProblemSpec {
        ProblemSpec::from_problem(problems::vertex_colouring(k))
    }

    /// Proper edge `k`-colouring (§1.3); labels encode the owned
    /// positive-direction edge colours, one per dimension
    /// ([`lcl_core::problems::edge_label_encode_d`]; on 2-d tori this is
    /// the classic (east, north) encoding). On a d-dimensional torus the
    /// problem reads as edge `k`-colouring of the `2d`-regular torus
    /// graph — Theorem 21's `k = 2d` case is solvable exactly for even
    /// side lengths.
    pub fn edge_colouring(k: u16) -> ProblemSpec {
        ProblemSpec::from_problem(problems::edge_colouring(k))
    }

    /// `X`-orientation (§11).
    pub fn orientation(x: XSet) -> ProblemSpec {
        ProblemSpec::from_problem(problems::orientation(x))
    }

    /// Maximal independent set with dominator pointers.
    pub fn mis_with_pointers() -> ProblemSpec {
        ProblemSpec {
            name: "mis-with-pointers".to_string(),
            kind: SpecKind::Grid(problems::mis_with_pointers()),
            analysis: None,
        }
    }

    /// Independent set (solvable by the empty set, hence `O(1)`).
    pub fn independent_set() -> ProblemSpec {
        ProblemSpec {
            name: "independent-set".to_string(),
            kind: SpecKind::Grid(problems::independent_set()),
            analysis: None,
        }
    }

    /// Maximal independent set of the `metric`-power `G^k` — the paper's
    /// problem-independent anchor substrate `S_k` (§8), meaningful on tori
    /// of every dimension. Labels: 1 = in the set, 0 = out.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn mis_power(metric: Metric, k: usize) -> ProblemSpec {
        assert!(k > 0, "power exponent must be positive");
        let tag = match metric {
            Metric::L1 => "l1",
            Metric::Linf => "linf",
        };
        ProblemSpec {
            name: format!("mis-power-{tag}-{k}"),
            kind: SpecKind::MisPower { metric, k },
            analysis: None,
        }
    }

    /// The corner coordination problem on boundary grids (Appendix A.3).
    pub fn corner_coordination() -> ProblemSpec {
        ProblemSpec {
            name: "corner-coordination".to_string(),
            kind: SpecKind::Corner,
            analysis: None,
        }
    }

    /// A custom block LCL under an explicit name.
    pub fn block(name: impl Into<String>, lcl: BlockLcl) -> ProblemSpec {
        ProblemSpec {
            name: name.into(),
            kind: SpecKind::Grid(GridProblem::Block(lcl)),
            analysis: None,
        }
    }

    /// Compiles an [`lcl-lang`](lcl_lang) problem definition to its block
    /// normal form and wraps it as a spec: the front door for *arbitrary*
    /// LCLs. The compiled problem routes through the full registry —
    /// constant detection, §7 synthesis, the SAT existence baseline,
    /// [`Engine::classify`](crate::engine::Engine::classify) — and its
    /// synthesis-cache key is content-addressed from the canonical
    /// compiled form, so identical sources share cache entries (and batch
    /// dedup) with each other and with equivalent hand-built tables.
    ///
    /// # Example
    ///
    /// ```
    /// use lcl_grids::engine::ProblemSpec;
    /// let spec = ProblemSpec::compile(
    ///     "problem vertex-3-colouring { alphabet { r, g, b } edges differ }",
    /// )
    /// .unwrap();
    /// assert_eq!(spec.name(), "vertex-3-colouring");
    /// assert_eq!(spec.alphabet(), 3);
    /// // Verdict-identical to the hand-built problem:
    /// let reference = ProblemSpec::vertex_colouring(3);
    /// assert!((0..3u16).all(|l| {
    ///     spec.block_allowed([l, l, l, l]) == reference.block_allowed([l, l, l, l])
    /// }));
    /// ```
    pub fn compile(src: &str) -> Result<ProblemSpec, LangError> {
        // The combined front door of lcl-analyze: parse + compile + the
        // full static analysis (AST-level passes included, so shadowed
        // clauses and pruned source labels carry their spans).
        let out = lcl_analyze::compile(src)?;
        let mut spec = ProblemSpec::block(
            out.compiled.name().to_string(),
            out.compiled.block_lcl().clone(),
        );
        spec.analysis = Some(Arc::new(out.analysis));
        Ok(spec)
    }

    /// Reads and [`compile`](ProblemSpec::compile)s an `.lcl` source file;
    /// unreadable paths surface as a (span-free) [`LangError`].
    pub fn compile_file(path: impl AsRef<Path>) -> Result<ProblemSpec, LangError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path)
            .map_err(|e| LangError::whole_file(format!("cannot read {}: {e}", path.display())))?;
        ProblemSpec::compile(&src)
    }

    /// Wraps an already-compiled [`lcl_lang::CompiledLcl`] under its
    /// source-declared name.
    pub fn compiled(compiled: &lcl_lang::CompiledLcl) -> ProblemSpec {
        let mut spec =
            ProblemSpec::block(compiled.name().to_string(), compiled.block_lcl().clone());
        spec.analysis = Some(Arc::new(lcl_analyze::analyze_compiled(compiled)));
        spec
    }

    /// Wraps any [`GridProblem`] under its canonical name.
    pub fn from_problem(problem: GridProblem) -> ProblemSpec {
        ProblemSpec {
            name: problem.name(),
            kind: SpecKind::Grid(problem),
            analysis: None,
        }
    }

    /// The stable problem name (also the registry and cache key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The [`lcl-analyze`](lcl_analyze) static analysis attached to this
    /// spec. Every DSL-compiled spec ([`ProblemSpec::compile`] /
    /// [`ProblemSpec::compiled`]) carries a span-bearing one from
    /// construction; raw block specs start without and gain a span-free
    /// one when the engine prepares them
    /// ([`PreparedProblem::analysis`](super::PreparedProblem::analysis)).
    pub fn analysis(&self) -> Option<&Arc<Analysis>> {
        self.analysis.as_ref()
    }

    /// The problem's home topology: where its canonical definition lives
    /// (2-d tori for the grid library, boundary grids for corner
    /// coordination). Use [`ProblemSpec::supports`] to ask about a
    /// *specific* topology — several problems are meaningful on more than
    /// their home.
    pub fn home_topology(&self) -> Topology {
        match self.kind {
            SpecKind::Grid(_) | SpecKind::MisPower { .. } => Topology::Torus2,
            SpecKind::Corner => Topology::Boundary,
        }
    }

    /// True iff the problem has defined semantics (and a checker) on the
    /// given topology. This is the dispatch dimension the registry and
    /// [`Engine::solve`](crate::engine::Engine::solve) match on; a
    /// supported topology may still have no registered solver.
    pub fn supports(&self, topology: Topology) -> bool {
        match (&self.kind, topology) {
            (SpecKind::Corner, t) => t == Topology::Boundary,
            (_, Topology::Boundary) => false,
            // Every torus problem lives on 2-d tori (d = 2 included).
            (_, Topology::Torus2) | (_, Topology::TorusD { d: 2 }) => true,
            (SpecKind::MisPower { .. }, Topology::TorusD { .. }) => true,
            (SpecKind::Grid(p), Topology::TorusD { d }) => ddim_semantics(p, d).is_some(),
        }
    }

    /// The underlying grid problem, if this is a torus block problem.
    pub fn grid_problem(&self) -> Option<&GridProblem> {
        match &self.kind {
            SpecKind::Grid(p) => Some(p),
            _ => None,
        }
    }

    /// The MIS-power parameters, if this is a [`ProblemSpec::mis_power`]
    /// problem.
    pub fn mis_power_params(&self) -> Option<(Metric, usize)> {
        match self.kind {
            SpecKind::MisPower { metric, k } => Some((metric, k)),
            _ => None,
        }
    }

    /// Output alphabet size (corner coordination uses the 5 out-pointer
    /// labels of the boundary-paths solver).
    pub fn alphabet(&self) -> u16 {
        match &self.kind {
            SpecKind::Grid(p) => p.alphabet(),
            SpecKind::MisPower { .. } => 2,
            SpecKind::Corner => 5,
        }
    }

    /// The canonical normal form: the explicit set of allowed 2×2 blocks,
    /// tabulated from the problem's validity predicate. `None` for
    /// problems without a radius-1 block normal form (corner coordination,
    /// MIS powers with `k ≥ 2`).
    ///
    /// This is the "one representation" every radius-1 torus problem
    /// converts to; it also serves as an independent checker for engine
    /// output.
    pub fn to_block_lcl(&self) -> Option<BlockLcl> {
        let p = self.grid_problem()?;
        Some(BlockLcl::from_predicate(p.alphabet(), |b| {
            p.block_allowed(b)
        }))
    }

    /// True iff the 2×2 window is allowed (torus block problems only).
    pub fn block_allowed(&self, block: Block) -> bool {
        match &self.kind {
            SpecKind::Grid(p) => p.block_allowed(block),
            _ => false,
        }
    }

    /// A label whose constant labelling is valid on 2-d tori — the `O(1)`
    /// criterion.
    pub fn constant_solution(&self) -> Option<Label> {
        self.grid_problem().and_then(|p| p.constant_solution())
    }

    /// True iff the constant solution (when one exists) stays valid on
    /// tori of *every* dimension, not just `d = 2`. Block semantics only
    /// pin down 2×2 windows, so this holds exactly when the problem has
    /// d-dimensional semantics and the uniform labelling satisfies them —
    /// currently the independent-set family (the empty set is independent
    /// in any graph).
    pub(crate) fn constant_solution_on_any_torus(&self) -> bool {
        match &self.kind {
            SpecKind::Grid(p) => {
                // A pairwise problem's 2-d constant solution `l` satisfies
                // `pair(l, l)`, which is the whole validity condition of
                // the constant labelling in every dimension.
                matches!(
                    ddim_semantics(p, 3),
                    Some(DdimSemantics::IndependentSet | DdimSemantics::Pairwise(_))
                )
                .then(|| p.constant_solution())
                .flatten()
                .is_some()
            }
            _ => false,
        }
    }

    /// Checks a labelling with the independent 2-d block checker.
    ///
    /// # Panics
    ///
    /// Panics if called on a problem without a block normal form or with a
    /// labelling of the wrong length. Prefer
    /// [`ProblemSpec::check_instance`], which handles every topology.
    pub fn check(&self, torus: &Torus2, labels: &[Label]) -> Result<(), Violation> {
        self.grid_problem()
            .expect("check() applies to torus block problems")
            .check(torus, labels)
    }

    /// Validates a labelling on any supported topology with the
    /// problem-native checker for that topology: the tabulated block
    /// normal form on 2-d tori, the d-dimensional §8/§10 validators on
    /// higher-dimensional tori, and the corner-coordination rules (1)–(5)
    /// on boundary grids.
    ///
    /// Errors are human-readable descriptions of the first violation (or
    /// of a topology the problem has no semantics on).
    pub fn check_instance(&self, inst: &Instance, labels: &[Label]) -> Result<(), String> {
        if labels.len() != inst.node_count() {
            return Err(format!(
                "labelling has {} labels for {} nodes",
                labels.len(),
                inst.node_count()
            ));
        }
        if let Some(lowered) = inst.lower_d2() {
            return self.check_instance(&lowered, labels);
        }
        match (&self.kind, inst) {
            (SpecKind::Corner, Instance::Boundary(grid)) => {
                let forest = super::decode_forest(grid, labels);
                corner::check(grid, &forest)
            }
            (SpecKind::Grid(p), Instance::Torus2(gi)) => p
                .check(&gi.torus(), labels)
                .map_err(|violation| violation.to_string()),
            (SpecKind::Grid(p), Instance::TorusD(di)) => {
                let torus = di.torus();
                match ddim_semantics(p, torus.dim()) {
                    Some(DdimSemantics::VertexColouring { k }) => {
                        check_named(problems::is_proper_vertex_colouring_d(torus, labels, k))
                            .map_err(|()| format!("not a proper vertex {k}-colouring of {torus:?}"))
                    }
                    Some(DdimSemantics::EdgeColouring { k }) => {
                        check_named(problems::is_proper_edge_colouring_d(torus, labels, k))
                            .map_err(|()| format!("not a proper edge {k}-colouring of {torus:?}"))
                    }
                    Some(DdimSemantics::IndependentSet) => {
                        check_named(problems::is_independent_set_d(torus, labels))
                            .map_err(|()| format!("label-1 nodes not independent in {torus:?}"))
                    }
                    Some(DdimSemantics::Pairwise(pairs)) => check_named(
                        problems::is_pairwise_valid_d(torus, labels, p.alphabet(), &pairs),
                    )
                    .map_err(|()| {
                        format!(
                            "an adjacent pair violates the axis relation of {} on {torus:?}",
                            self.name
                        )
                    }),
                    None => Err(format!(
                        "{} has no {}-dimensional semantics",
                        self.name,
                        torus.dim()
                    )),
                }
            }
            (SpecKind::MisPower { metric, k }, _) => {
                let torus = match inst {
                    Instance::TorusD(di) => di.torus().clone(),
                    Instance::Torus2(gi) => {
                        let t = gi.torus();
                        if t.width() != t.height() {
                            return Err("mis-power validation needs a square torus".to_string());
                        }
                        TorusD::new(2, t.side())
                    }
                    Instance::Boundary(_) => {
                        return Err(format!("{} lives on tori, not boundary grids", self.name))
                    }
                };
                if labels.iter().any(|&l| l > 1) {
                    return Err("mis-power labels must be 0 or 1".to_string());
                }
                let marked: Vec<bool> = labels.iter().map(|&l| l == 1).collect();
                check_named(torus.is_maximal_independent(*metric, *k, &marked)).map_err(|()| {
                    format!("not a maximal independent set of the {metric:?}-power k={k}")
                })
            }
            (_, _) => Err(format!(
                "{} has no semantics on a {}",
                self.name,
                inst.topology()
            )),
        }
    }
}

fn check_named(ok: bool) -> Result<(), ()> {
    if ok {
        Ok(())
    } else {
        Err(())
    }
}

/// The d-dimensional reading of a 2-d grid problem, when one exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum DdimSemantics {
    /// Proper vertex `k`-colouring of the d-dimensional torus graph.
    VertexColouring { k: u16 },
    /// Proper edge `k`-colouring under the owner convention.
    EdgeColouring { k: u16 },
    /// Label-1 nodes form an independent set.
    IndependentSet,
    /// The block predicate factors into one pair relation applied along
    /// both axes, so the problem reads as "that relation on every
    /// adjacent pair" in any dimension. This is how compiled `lcl-lang`
    /// problems built from edge-set sugar gain `d ≥ 3` existence
    /// verdicts and validation. Carries the relation table
    /// ([`BlockLcl::axis_symmetric_pairs`]) so the `O(|Σ|⁴)` derivation
    /// runs once per query, not once per consumer.
    Pairwise(Vec<bool>),
}

/// Which 2-d problems generalise to `d ≥ 3` tori with well-defined
/// semantics. Vertex and edge colouring carry over verbatim (the torus
/// graph just becomes `2d`-regular; edge labels need `k^d` to fit the
/// label space); block problems carry over exactly when their predicate
/// factors into a single axis-symmetric pair relation (the independent
/// set, kept as its own variant for its dedicated validator, and the
/// general [`DdimSemantics::Pairwise`] case). Orientations,
/// MIS-with-pointers and non-decomposable block LCLs constrain oriented
/// 2×2 windows, which have no canonical d-dimensional counterpart — they
/// stay 2-d.
pub(crate) fn ddim_semantics(problem: &GridProblem, d: usize) -> Option<DdimSemantics> {
    match problem {
        GridProblem::VertexColouring { k } => Some(DdimSemantics::VertexColouring { k: *k }),
        GridProblem::EdgeColouring { k } => {
            // The mixed-radix label encoding must fit: k^d ≤ Label::MAX+1.
            problems::edge_label_encode_d(&vec![0; d], *k)
                .map(|_| DdimSemantics::EdgeColouring { k: *k })
        }
        GridProblem::Block(b) if b.alphabet() == 2 && is_independent_set_block(b) => {
            Some(DdimSemantics::IndependentSet)
        }
        GridProblem::Block(b) => b.axis_symmetric_pairs().map(DdimSemantics::Pairwise),
        _ => None,
    }
}

/// True iff a 2-label block LCL is exactly the independent-set predicate
/// (no two adjacent 1s, in both directions) — the one block problem whose
/// pairwise reading generalises to any dimension.
fn is_independent_set_block(b: &BlockLcl) -> bool {
    let reference = problems::independent_set();
    (0u16..16).all(|i| {
        let block: Block = [i & 1, (i >> 1) & 1, (i >> 2) & 1, (i >> 3) & 1];
        b.block_allowed(block) == reference.block_allowed(block)
    })
}

impl fmt::Display for ProblemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.name, self.home_topology())
    }
}
