//! The canonical problem representation the engine dispatches on.
//!
//! Every radius-1 LCL on oriented grids normalises to a set of allowed
//! 2×2 blocks (§3), so a [`ProblemSpec`] is fundamentally a
//! [`GridProblem`] plus a stable name; the named constructors tag the
//! problem library of [`lcl_core::problems`] so that the
//! [`Registry`](crate::engine::Registry) can recognise the problems with
//! hand-built algorithms. Corner coordination (Appendix A.3) lives on
//! bounded grids rather than tori and is carried as its own variant.

use lcl_core::lcl::{Block, BlockLcl};
use lcl_core::problems::{self, XSet};
use lcl_core::{GridProblem, Label, Violation};
use lcl_grid::Torus2;
use std::fmt;

/// The topology a problem (or a solver) lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Oriented two-dimensional tori — the paper's main setting.
    Torus,
    /// Non-toroidal `m × m` grids with boundary (Appendix A.3).
    Boundary,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Torus => write!(f, "oriented torus"),
            Topology::Boundary => write!(f, "boundary grid"),
        }
    }
}

#[derive(Clone, Debug)]
enum SpecKind {
    Grid(GridProblem),
    Corner,
}

/// A canonical, named LCL problem — the engine's single problem currency.
///
/// # Example
///
/// ```
/// use lcl_grids::engine::ProblemSpec;
/// let spec = ProblemSpec::vertex_colouring(4);
/// assert_eq!(spec.name(), "vertex-4-colouring");
/// assert_eq!(spec.to_block_lcl().unwrap().alphabet(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct ProblemSpec {
    name: String,
    kind: SpecKind,
}

impl ProblemSpec {
    /// Proper vertex `k`-colouring (§1.3).
    pub fn vertex_colouring(k: u16) -> ProblemSpec {
        ProblemSpec::from_problem(problems::vertex_colouring(k))
    }

    /// Proper edge `k`-colouring (§1.3); labels encode (east, north).
    pub fn edge_colouring(k: u16) -> ProblemSpec {
        ProblemSpec::from_problem(problems::edge_colouring(k))
    }

    /// `X`-orientation (§11).
    pub fn orientation(x: XSet) -> ProblemSpec {
        ProblemSpec::from_problem(problems::orientation(x))
    }

    /// Maximal independent set with dominator pointers.
    pub fn mis_with_pointers() -> ProblemSpec {
        ProblemSpec {
            name: "mis-with-pointers".to_string(),
            kind: SpecKind::Grid(problems::mis_with_pointers()),
        }
    }

    /// Independent set (solvable by the empty set, hence `O(1)`).
    pub fn independent_set() -> ProblemSpec {
        ProblemSpec {
            name: "independent-set".to_string(),
            kind: SpecKind::Grid(problems::independent_set()),
        }
    }

    /// The corner coordination problem on boundary grids (Appendix A.3).
    pub fn corner_coordination() -> ProblemSpec {
        ProblemSpec {
            name: "corner-coordination".to_string(),
            kind: SpecKind::Corner,
        }
    }

    /// A custom block LCL under an explicit name.
    pub fn block(name: impl Into<String>, lcl: BlockLcl) -> ProblemSpec {
        ProblemSpec {
            name: name.into(),
            kind: SpecKind::Grid(GridProblem::Block(lcl)),
        }
    }

    /// Wraps any [`GridProblem`] under its canonical name.
    pub fn from_problem(problem: GridProblem) -> ProblemSpec {
        ProblemSpec {
            name: problem.name(),
            kind: SpecKind::Grid(problem),
        }
    }

    /// The stable problem name (also the registry and cache key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topology the problem lives on.
    pub fn topology(&self) -> Topology {
        match self.kind {
            SpecKind::Grid(_) => Topology::Torus,
            SpecKind::Corner => Topology::Boundary,
        }
    }

    /// The underlying grid problem, if this is a torus problem.
    pub fn grid_problem(&self) -> Option<&GridProblem> {
        match &self.kind {
            SpecKind::Grid(p) => Some(p),
            SpecKind::Corner => None,
        }
    }

    /// Output alphabet size (corner coordination uses the 5 out-pointer
    /// labels of [`crate::engine::Engine::solve_boundary`]).
    pub fn alphabet(&self) -> u16 {
        match &self.kind {
            SpecKind::Grid(p) => p.alphabet(),
            SpecKind::Corner => 5,
        }
    }

    /// The canonical normal form: the explicit set of allowed 2×2 blocks,
    /// tabulated from the problem's validity predicate. `None` for
    /// non-torus problems.
    ///
    /// This is the "one representation" every torus problem converts to;
    /// it also serves as an independent checker for engine output.
    pub fn to_block_lcl(&self) -> Option<BlockLcl> {
        let p = self.grid_problem()?;
        Some(BlockLcl::from_predicate(p.alphabet(), |b| {
            p.block_allowed(b)
        }))
    }

    /// True iff the 2×2 window is allowed (torus problems only).
    pub fn block_allowed(&self, block: Block) -> bool {
        match &self.kind {
            SpecKind::Grid(p) => p.block_allowed(block),
            SpecKind::Corner => false,
        }
    }

    /// A label whose constant labelling is valid — the `O(1)` criterion.
    pub fn constant_solution(&self) -> Option<Label> {
        self.grid_problem().and_then(|p| p.constant_solution())
    }

    /// Checks a labelling with the independent block checker.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-torus problem or with a labelling of the
    /// wrong length.
    pub fn check(&self, torus: &Torus2, labels: &[Label]) -> Result<(), Violation> {
        self.grid_problem()
            .expect("check() applies to torus problems")
            .check(torus, labels)
    }
}

impl fmt::Display for ProblemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.name, self.topology())
    }
}
