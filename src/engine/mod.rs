//! The unified engine: one entry point for every LCL problem, algorithm,
//! and topology in this repository.
//!
//! The paper shows that every radius-1 LCL on oriented grids reduces to
//! one normal form and one complexity landscape; this module gives the
//! code base the matching shape. A [`ProblemSpec`] is the canonical
//! problem representation, a [`Registry`] maps it to the best available
//! solvers (hand-built §8/§10 constructions, §7 synthesis with memoised
//! SAT calls, the `Θ(n)` SAT existence baseline), and an [`Engine`] walks
//! that plan with a `Result`-based, panic-free surface:
//!
//! ```
//! use lcl_grids::engine::{Engine, ProblemSpec};
//! use lcl_grids::local::{GridInstance, IdAssignment};
//!
//! let engine = Engine::builder()
//!     .problem(ProblemSpec::orientation(
//!         lcl_grids::core::problems::XSet::from_degrees(&[1, 3, 4]),
//!     ))
//!     .max_synthesis_k(1)
//!     .build()
//!     .unwrap();
//! let inst = GridInstance::new(12, &IdAssignment::Shuffled { seed: 7 });
//! let labelling = engine.solve(&inst).unwrap();
//! assert_eq!(labelling.labels.len(), 144);
//! assert!(labelling.report.validated);
//! ```
//!
//! Failures are values, not panics: unsolvable instances, undersized
//! tori, exhausted synthesis budgets, and exceeded round budgets all come
//! back as [`SolveError`] variants.

mod batch;
mod error;
mod pool;
mod registry;
mod spec;

pub use batch::BatchReport;
pub use error::SolveError;
pub use registry::{PlanOptions, Registry, SynthOrigin, SynthStats};
pub use spec::{ProblemSpec, Topology};

use lcl_algorithms::corner::{self, BoundaryGrid, PseudoForest};
use lcl_algorithms::Profile;
use lcl_core::classify::GridClass;
use lcl_core::{existence, Label};
use lcl_grid::Torus2;
use lcl_local::{GridInstance, Rounds};
use std::fmt;
use std::sync::Arc;

/// Asymptotic round complexity a solver promises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Complexity {
    /// `O(1)` rounds.
    Constant,
    /// `O(log* n)` rounds.
    LogStar,
    /// `Θ(√n)` rounds (corner coordination).
    SqrtN,
    /// `Θ(n)` rounds (gather everything).
    Linear,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Constant => write!(f, "O(1)"),
            Complexity::LogStar => write!(f, "O(log* n)"),
            Complexity::SqrtN => write!(f, "Θ(√n)"),
            Complexity::Linear => write!(f, "Θ(n)"),
        }
    }
}

/// What a solver supports: consulted by the engine before dispatch.
#[derive(Clone, Copy, Debug)]
pub struct Capabilities {
    /// The topology the solver runs on.
    pub topology: Topology,
    /// Smallest supported torus side.
    pub min_side: usize,
    /// True if only square tori are supported.
    pub square_only: bool,
    /// Promised asymptotic round complexity.
    pub complexity: Complexity,
}

/// Metadata accompanying every labelling: which solver ran, what it
/// charged the LOCAL-round ledger, and whether the output was re-checked.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The problem that was solved.
    pub problem: String,
    /// The solver that produced the labelling.
    pub solver: String,
    /// The LOCAL round ledger (phase-by-phase, see `lcl_local::Rounds`).
    pub rounds: Rounds,
    /// True once the engine has re-validated the labelling with the
    /// independent block checker.
    pub validated: bool,
    /// Solver-specific diagnostics (spacing `ℓ`, anchor counts, measured
    /// gaps, lookup-table sizes, …) as key/value pairs.
    pub details: Vec<(String, String)>,
}

impl SolveReport {
    pub(crate) fn new(problem: &str, solver: &str, rounds: Rounds) -> SolveReport {
        SolveReport {
            problem: problem.to_string(),
            solver: solver.to_string(),
            rounds,
            validated: false,
            details: Vec::new(),
        }
    }

    pub(crate) fn with_detail(mut self, key: &str, value: impl ToString) -> SolveReport {
        self.details.push((key.to_string(), value.to_string()));
        self
    }

    /// Looks up a solver-specific diagnostic by key.
    pub fn detail(&self, key: &str) -> Option<&str> {
        self.details
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A solved instance: one label per node plus the [`SolveReport`].
#[derive(Clone, Debug)]
pub struct Labelling {
    /// One label per node, in node-index order.
    pub labels: Vec<Label>,
    /// Provenance and round accounting.
    pub report: SolveReport,
}

/// A solver the engine can dispatch to: the object the [`Registry`] hands
/// out, and the extension point for new algorithm families.
pub trait Solve: Send + Sync {
    /// Stable solver name for reports and errors.
    fn name(&self) -> &str;

    /// What instances this solver accepts.
    fn capabilities(&self) -> Capabilities;

    /// Solves one instance, never panicking on bad input.
    fn solve(&self, inst: &GridInstance) -> Result<Labelling, SolveError>;
}

/// Builder for [`Engine`]; start from [`Engine::builder`].
pub struct EngineBuilder {
    problem: Option<ProblemSpec>,
    profile: Profile,
    rounds_budget: Option<u64>,
    max_synthesis_k: usize,
    seed: Option<u64>,
    validate: bool,
    registry: Option<Arc<Registry>>,
    threads: usize,
    cache_dir: Option<std::path::PathBuf>,
    dedup: bool,
}

impl EngineBuilder {
    /// The problem the engine will solve (required).
    pub fn problem(mut self, spec: ProblemSpec) -> EngineBuilder {
        self.problem = Some(spec);
        self
    }

    /// Parameter profile for the hand-built constructions (default:
    /// [`Profile::Practical`]).
    pub fn profile(mut self, profile: Profile) -> EngineBuilder {
        self.profile = profile;
        self
    }

    /// Reject solutions that need more LOCAL rounds than this budget
    /// (default: unlimited). The engine falls through to cheaper solvers
    /// and reports [`SolveError::RoundBudgetExceeded`] if none fits.
    pub fn rounds_budget(mut self, budget: u64) -> EngineBuilder {
        self.rounds_budget = Some(budget);
        self
    }

    /// Largest anchor spacing `k` synthesis may try (default: 3, the
    /// paper's 4-colouring threshold).
    pub fn max_synthesis_k(mut self, k: usize) -> EngineBuilder {
        self.max_synthesis_k = k;
        self
    }

    /// Seed for the SAT fallback's branching phases, for solution-space
    /// sampling (default: deterministic canonical solution).
    pub fn seed(mut self, seed: u64) -> EngineBuilder {
        self.seed = Some(seed);
        self
    }

    /// Re-check every labelling with the independent block checker before
    /// returning it (default: on; turn off only on measured hot paths).
    pub fn validate(mut self, validate: bool) -> EngineBuilder {
        self.validate = validate;
        self
    }

    /// Share a registry (and thus its memoised synthesis cache) across
    /// engines (default: a fresh registry per engine).
    pub fn registry(mut self, registry: Arc<Registry>) -> EngineBuilder {
        self.registry = Some(registry);
        self
    }

    /// Worker threads for [`Engine::solve_batch`] (default: 1, fully
    /// sequential — the historical behaviour). `0` means "use every core
    /// the OS reports". Single-instance `solve` calls are unaffected.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = threads;
        self
    }

    /// Persist the synthesis cache under this directory so synthesised
    /// `A′ ∘ S_k` tables survive process restarts (default: no
    /// persistence).
    ///
    /// Applies to the engine's registry — including a shared one passed
    /// via [`EngineBuilder::registry`], where `build()` reconfigures the
    /// shared cache and the most recently built engine wins. When several
    /// engines share a registry, prefer configuring the directory once at
    /// registry construction ([`Registry::with_cache_dir`]) and omitting
    /// this knob.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> EngineBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// In-batch labelling dedup (default: on): instances with the same
    /// torus dimensions and identifier assignment are solved once per
    /// batch and the labelling is shared. Solving is deterministic, so
    /// this is observationally transparent; turn it off to force every
    /// instance through a full solve (e.g. when benchmarking).
    pub fn dedup(mut self, dedup: bool) -> EngineBuilder {
        self.dedup = dedup;
        self
    }

    /// Builds the engine, resolving the solver plan now so that
    /// misconfiguration surfaces here rather than at solve time.
    pub fn build(self) -> Result<Engine, SolveError> {
        let spec = self.problem.ok_or(SolveError::MissingProblem)?;
        let registry = self.registry.unwrap_or_default();
        if let Some(dir) = self.cache_dir {
            registry.set_cache_dir(Some(dir));
        }
        let opts = PlanOptions {
            profile: self.profile,
            max_synthesis_k: self.max_synthesis_k,
            seed: self.seed,
        };
        let plan = registry.plan(&spec, &opts);
        if plan.is_empty() && spec.topology() == Topology::Torus {
            return Err(SolveError::NoSolver {
                problem: spec.name().to_string(),
            });
        }
        Ok(Engine {
            spec,
            plan,
            registry,
            opts,
            rounds_budget: self.rounds_budget,
            validate: self.validate,
            threads: self.threads,
            dedup: self.dedup,
        })
    }
}

/// The single entry point: solves its problem on any supported instance
/// through the best applicable registered solver.
pub struct Engine {
    spec: ProblemSpec,
    plan: Vec<Box<dyn Solve>>,
    registry: Arc<Registry>,
    opts: PlanOptions,
    rounds_budget: Option<u64>,
    validate: bool,
    threads: usize,
    dedup: bool,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            problem: None,
            profile: Profile::Practical,
            rounds_budget: None,
            max_synthesis_k: 3,
            seed: None,
            validate: true,
            registry: None,
            threads: 1,
            cache_dir: None,
            dedup: true,
        }
    }

    /// The problem this engine solves.
    pub fn problem(&self) -> &ProblemSpec {
        &self.spec
    }

    /// The registry backing this engine.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The resolved solver plan, best first.
    pub fn solver_names(&self) -> Vec<&str> {
        self.plan.iter().map(|s| s.name()).collect()
    }

    /// Solves one torus instance.
    ///
    /// Walks the solver plan: solvers whose [`Capabilities`] reject the
    /// instance are skipped, typed per-solver failures fall through to
    /// the next solver, and successful labellings are re-validated with
    /// the independent block checker before being returned.
    pub fn solve(&self, inst: &GridInstance) -> Result<Labelling, SolveError> {
        if self.spec.topology() != Topology::Torus {
            return Err(SolveError::TopologyUnsupported {
                problem: self.spec.name().to_string(),
                reason: format!(
                    "{} lives on a {}; use Engine::solve_boundary",
                    self.spec.name(),
                    self.spec.topology()
                ),
            });
        }
        let torus = inst.torus();
        let side = torus.width().min(torus.height());
        let mut cheapest_over_budget: Option<u64> = None;
        let mut smallest_supported: Option<usize> = None;
        let mut fallthrough: Option<SolveError> = None;
        for solver in &self.plan {
            let caps = solver.capabilities();
            if caps.topology != Topology::Torus {
                continue;
            }
            if caps.square_only && torus.width() != torus.height() {
                continue;
            }
            if side < caps.min_side {
                smallest_supported =
                    Some(smallest_supported.map_or(caps.min_side, |m: usize| m.min(caps.min_side)));
                continue;
            }
            match solver.solve(inst) {
                Ok(mut labelling) => {
                    if self.validate {
                        if let Err(violation) = self.spec.check(&torus, &labelling.labels) {
                            fallthrough.get_or_insert(SolveError::ValidationFailed {
                                solver: solver.name().to_string(),
                                violation,
                            });
                            continue;
                        }
                        labelling.report.validated = true;
                    }
                    let needed = labelling.report.rounds.total();
                    if let Some(budget) = self.rounds_budget {
                        if needed > budget {
                            cheapest_over_budget =
                                Some(cheapest_over_budget.map_or(needed, |c: u64| c.min(needed)));
                            continue;
                        }
                    }
                    return Ok(labelling);
                }
                // Unsatisfiability is exact: no other solver can succeed.
                Err(e @ SolveError::Unsolvable { .. }) => return Err(e),
                Err(SolveError::TorusTooSmall { min_side, .. }) => {
                    smallest_supported =
                        Some(smallest_supported.map_or(min_side, |m: usize| m.min(min_side)));
                }
                Err(e) => {
                    fallthrough.get_or_insert(e);
                }
            }
        }
        if let (Some(needed), Some(budget)) = (cheapest_over_budget, self.rounds_budget) {
            return Err(SolveError::RoundBudgetExceeded { budget, needed });
        }
        if let Some(e) = fallthrough {
            return Err(e);
        }
        if let Some(min_side) = smallest_supported {
            return Err(SolveError::TorusTooSmall {
                problem: self.spec.name().to_string(),
                min_side,
                side,
            });
        }
        Err(SolveError::NoSolver {
            problem: self.spec.name().to_string(),
        })
    }

    /// Decides whether the problem has *any* valid labelling on the torus
    /// (the exact SAT existence question, independent of round budgets).
    pub fn solvable(&self, torus: &Torus2) -> Result<bool, SolveError> {
        let problem = self
            .spec
            .grid_problem()
            .ok_or_else(|| self.boundary_only_error())?;
        Ok(existence::solvable(problem, torus))
    }

    /// The one-sided classification adapter (§7): `Constant` if a
    /// constant labelling works, `LogStar` with certainty if a certified
    /// hand-built `O(log* n)` solver is registered or synthesis succeeds
    /// within the engine's `k` budget (memoised), `Global` otherwise —
    /// which, by Theorem 3, no procedure can sharpen.
    pub fn classify(&self) -> Result<GridClass, SolveError> {
        if self.spec.grid_problem().is_none() {
            return Err(self.boundary_only_error());
        }
        if self.spec.constant_solution().is_some() {
            return Ok(GridClass::Constant);
        }
        // A hand-built solver in the plan is an a-priori log* upper bound
        // (Theorems 4 and 15), independent of the synthesis budget.
        let certified_log_star = self.plan.iter().any(|s| {
            s.capabilities().complexity == Complexity::LogStar
                && s.name() != registry::SYNTHESIS_SOLVER_NAME
        });
        if certified_log_star {
            return Ok(GridClass::LogStar);
        }
        match self
            .registry
            .memoised_synthesis(&self.spec, self.opts.max_synthesis_k)
        {
            Some(_) => Ok(GridClass::LogStar),
            None => Ok(GridClass::Global),
        }
    }

    /// Solves the corner coordination problem on a boundary grid
    /// (Appendix A.3). Labels encode each node's out-pointer: 0 = none,
    /// 1 = north, 2 = east, 3 = south, 4 = west.
    pub fn solve_boundary(&self, grid: &BoundaryGrid) -> Result<Labelling, SolveError> {
        if self.spec.topology() != Topology::Boundary {
            return Err(SolveError::TopologyUnsupported {
                problem: self.spec.name().to_string(),
                reason: format!(
                    "{} lives on an oriented torus; use Engine::solve",
                    self.spec.name()
                ),
            });
        }
        let forest = corner::solve_boundary_paths(grid);
        corner::check(grid, &forest).map_err(|detail| SolveError::SolverFailed {
            solver: "boundary-paths".to_string(),
            detail,
        })?;
        let labels = encode_forest(grid, &forest);
        let mut rounds = Rounds::new();
        // Proposition 28: radius 2√n = 2m exploration suffices.
        rounds.charge("corner-exploration", 2 * grid.side() as u64);
        let mut report = SolveReport::new(self.spec.name(), "boundary-paths", rounds);
        report.validated = true;
        Ok(Labelling { labels, report })
    }

    fn boundary_only_error(&self) -> SolveError {
        SolveError::TopologyUnsupported {
            problem: self.spec.name().to_string(),
            reason: format!("{} lives on a {}", self.spec.name(), self.spec.topology()),
        }
    }
}

/// Encodes a pseudoforest as per-node out-pointer labels (0 = none,
/// 1 = north, 2 = east, 3 = south, 4 = west).
fn encode_forest(grid: &BoundaryGrid, forest: &PseudoForest) -> Vec<Label> {
    let m = grid.side();
    let mut labels = vec![0 as Label; m * m];
    for &(u, v) in &forest.arcs {
        let (ux, uy) = (u % m, u / m);
        let (vx, vy) = (v % m, v / m);
        labels[u] = match (vx as i64 - ux as i64, vy as i64 - uy as i64) {
            (0, 1) => 1,
            (1, 0) => 2,
            (0, -1) => 3,
            (-1, 0) => 4,
            _ => unreachable!("checked arcs are grid edges"),
        };
    }
    labels
}

/// Decodes out-pointer labels back to a [`PseudoForest`] (the inverse of
/// the encoding used by [`Engine::solve_boundary`]), for re-validation
/// with [`lcl_algorithms::corner::check`].
pub fn decode_forest(grid: &BoundaryGrid, labels: &[Label]) -> PseudoForest {
    let m = grid.side();
    let mut arcs = Vec::new();
    for (u, &l) in labels.iter().enumerate() {
        let (x, y) = ((u % m) as i64, (u / m) as i64);
        let (dx, dy) = match l {
            0 => continue,
            1 => (0, 1),
            2 => (1, 0),
            3 => (0, -1),
            4 => (-1, 0),
            _ => continue,
        };
        let (vx, vy) = (x + dx, y + dy);
        if vx < 0 || vy < 0 || vx >= m as i64 || vy >= m as i64 {
            continue;
        }
        arcs.push((u, (vy as usize) * m + vx as usize));
    }
    PseudoForest { arcs }
}
