//! The unified engine: one shared service for every LCL problem,
//! algorithm, and topology in this repository.
//!
//! The paper shows that every radius-1 LCL on oriented grids reduces to
//! one normal form and one complexity landscape — in every dimension; this
//! module gives the code base the matching shape. A [`ProblemSpec`] is the
//! canonical problem representation, an [`Instance`] is the canonical
//! input — one currency over 2-d tori, d-dimensional tori, and boundary
//! grids — and a [`Registry`] maps each `(problem, topology)` pair to the
//! best available solvers (hand-built §8/§10 constructions, §7 synthesis
//! with memoised SAT calls, the d-dimensional Theorem 21 constructions,
//! corner coordination, the `Θ(n)` SAT existence baseline).
//!
//! An [`Engine`] is *problem-agnostic*: one `Send + Sync` service holding
//! the registry, worker-pool configuration, and the dedup / synthesis /
//! plan caches, shared across however many problems a process serves.
//! [`Engine::prepare`] resolves a problem's solver plan once into an
//! immutable [`PreparedProblem`] handle with `solve`, `solvable`,
//! `classify`, and `solver_names`; [`Engine::solve`] is the convenience
//! that prepares-and-memoises keyed by the canonical problem cache key, so
//! identical problem definitions share one plan:
//!
//! ```
//! use lcl_grids::engine::{Engine, Instance, ProblemSpec};
//! use lcl_grids::local::IdAssignment;
//!
//! let engine = Engine::builder().max_synthesis_k(1).build();
//! let orientation = engine
//!     .prepare(&ProblemSpec::orientation(
//!         lcl_grids::core::problems::XSet::from_degrees(&[1, 3, 4]),
//!     ))
//!     .unwrap();
//! let inst = Instance::square(12, &IdAssignment::Shuffled { seed: 7 });
//! let labelling = orientation.solve(&inst).unwrap();
//! assert_eq!(labelling.labels.len(), 144);
//! assert!(labelling.report.validated);
//!
//! // The same engine serves other problems and other topologies: edge
//! // 2d-colouring on a 3-dimensional torus dispatches to the Theorem 21
//! // construction — no second engine, no duplicated caches.
//! let edge6 = engine.prepare(&ProblemSpec::edge_colouring(6)).unwrap();
//! let inst3 = Instance::torus_d(3, 4, &IdAssignment::Sequential);
//! assert_eq!(edge6.solve(&inst3).unwrap().labels.len(), 64);
//!
//! // One-shot convenience: prepares (memoised) and solves.
//! let labelling = engine
//!     .solve(&ProblemSpec::edge_colouring(6), &inst3)
//!     .unwrap();
//! assert_eq!(labelling.labels.len(), 64);
//! ```
//!
//! Batch workloads go through [`Engine::solve_batch`] /
//! [`Engine::solve_jobs`] (slices, in-batch dedup, ordered results) or
//! the streaming [`Engine::solve_stream`] (an iterator of mixed-problem
//! [`Job`]s drained through a bounded channel in `O(threads)` memory).
//!
//! Failures are values, not panics: unsolvable instances, undersized
//! tori, unsupported `(problem, topology)` pairs, exhausted synthesis
//! budgets, and exceeded round budgets all come back as [`SolveError`]
//! variants.

mod atlas;
mod batch;
mod chaos;
mod error;
mod health;
mod instance;
mod pool;
mod prepared;
mod registry;
mod spec;
mod stream;

pub use atlas::{AtlasEntry, AtlasSeed, AtlasTable};
pub use batch::{BatchReport, Job, ProblemBatchStats};
pub use chaos::{ChaosConfig, ChaosState, FaultPoint};
pub use error::SolveError;
pub use health::{
    BreakerSnapshot, BreakerState, Health, TierCounters, BREAKER_BASE_COOLDOWN, BREAKER_THRESHOLD,
};
pub use instance::Instance;
pub use lcl_sat::{Budget, BudgetExceeded, CancelToken};
pub use lcl_trace::{Cost, SolverCost, TierAttempt, TierOutcome};
pub use prepared::PreparedProblem;
pub use registry::{PlanOptions, Registry, SynthOrigin, SynthStats};
pub use spec::{ProblemSpec, Topology};
pub use stream::{JobOutcome, SolveStream, JOBS_ITERATOR_PANICKED};

use lcl_algorithms::corner::{BoundaryGrid, PseudoForest};
use lcl_algorithms::Profile;
use lcl_core::classify::GridClass;
use lcl_core::Label;
use lcl_local::Rounds;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Asymptotic round complexity a solver promises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Complexity {
    /// `O(1)` rounds.
    Constant,
    /// `O(log* n)` rounds.
    LogStar,
    /// `Θ(√n)` rounds (corner coordination).
    SqrtN,
    /// `Θ(n)` rounds (gather everything).
    Linear,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Constant => write!(f, "O(1)"),
            Complexity::LogStar => write!(f, "O(log* n)"),
            Complexity::SqrtN => write!(f, "Θ(√n)"),
            Complexity::Linear => write!(f, "Θ(n)"),
        }
    }
}

/// The family of topologies a solver accepts — the coarse dispatch
/// dimension of [`Capabilities`]. Finer constraints (dimension-dependent
/// palette sizes, parity of the side length) are the solver's own
/// business and surface as typed per-instance errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySupport {
    /// Exactly the oriented 2-d torus.
    Torus2,
    /// Oriented tori of every dimension `d ≥ 2` (2-d instances are
    /// presented to the solver in their `Torus2` form).
    AnyTorusD,
    /// Boundary grids.
    Boundary,
}

impl TopologySupport {
    /// True iff a solver with this support accepts an instance of the
    /// given topology.
    pub fn accepts(self, topology: Topology) -> bool {
        matches!(
            (self, topology),
            (TopologySupport::Torus2, Topology::Torus2)
                | (
                    TopologySupport::AnyTorusD,
                    Topology::Torus2 | Topology::TorusD { .. }
                )
                | (TopologySupport::Boundary, Topology::Boundary)
        )
    }
}

/// What a solver supports: consulted by the engine before dispatch.
#[derive(Clone, Copy, Debug)]
pub struct Capabilities {
    /// The topology family the solver runs on.
    pub topology: TopologySupport,
    /// Smallest supported side length.
    pub min_side: usize,
    /// True if only equal side lengths are supported.
    pub square_only: bool,
    /// Promised asymptotic round complexity.
    pub complexity: Complexity,
}

/// Metadata accompanying every labelling: which solver ran, what it
/// charged the LOCAL-round ledger, and whether the output was re-checked.
///
/// `Debug` deliberately omits the [`cost`](SolveReport::cost) ledger:
/// its wall-clock timings vary run to run, and the engine's determinism
/// contract (parallel ≡ sequential ≡ deduped, byte-for-byte) is pinned
/// by tests comparing report `Debug` output.
#[derive(Clone)]
pub struct SolveReport {
    /// The problem that was solved.
    pub problem: String,
    /// The solver that produced the labelling.
    pub solver: String,
    /// The LOCAL round ledger (phase-by-phase, see `lcl_local::Rounds`).
    pub rounds: Rounds,
    /// True once the engine has re-validated the labelling with the
    /// topology-native independent checker.
    pub validated: bool,
    /// Solver-specific diagnostics (spacing `ℓ`, anchor counts, measured
    /// gaps, lookup-table sizes, …) as key/value pairs.
    pub details: Vec<(String, String)>,
    /// The per-solve cost ledger: every tier attempt the walk made (in
    /// order) with its wall time and attributed SAT work. Populated by
    /// [`PreparedProblem::solve_with`]; empty for reports produced
    /// outside the tier walk. Tracing need not be enabled — the ledger
    /// is always on.
    pub cost: lcl_trace::Cost,
}

impl SolveReport {
    pub(crate) fn new(problem: &str, solver: &str, rounds: Rounds) -> SolveReport {
        SolveReport {
            problem: problem.to_string(),
            solver: solver.to_string(),
            rounds,
            validated: false,
            details: Vec::new(),
            cost: lcl_trace::Cost::default(),
        }
    }

    pub(crate) fn with_detail(mut self, key: &str, value: impl ToString) -> SolveReport {
        self.details.push((key.to_string(), value.to_string()));
        self
    }

    /// The per-solve cost ledger (tier attempts with wall time and
    /// attributed SAT work); empty for reports produced outside the
    /// tier walk.
    pub fn cost(&self) -> &lcl_trace::Cost {
        &self.cost
    }

    /// Looks up a solver-specific diagnostic by key.
    pub fn detail(&self, key: &str) -> Option<&str> {
        self.details
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Debug for SolveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `cost` is omitted on purpose: wall-clock fields would make
        // byte-identical runs print differently (see the struct docs).
        f.debug_struct("SolveReport")
            .field("problem", &self.problem)
            .field("solver", &self.solver)
            .field("rounds", &self.rounds)
            .field("validated", &self.validated)
            .field("details", &self.details)
            .finish_non_exhaustive()
    }
}

/// A solved instance: one label per node plus the [`SolveReport`].
#[derive(Clone, Debug)]
pub struct Labelling {
    /// One label per node, in node-index order.
    pub labels: Vec<Label>,
    /// Provenance and round accounting.
    pub report: SolveReport,
}

/// A solver the engine can dispatch to: the object the [`Registry`] hands
/// out, and the extension point for new algorithm families. Solvers take
/// the topology-polymorphic [`Instance`]; the engine only routes
/// instances whose topology the solver's [`Capabilities`] accept.
pub trait Solve: Send + Sync {
    /// Stable solver name for reports and errors.
    fn name(&self) -> &str;

    /// What instances this solver accepts.
    fn capabilities(&self) -> Capabilities;

    /// Solves one instance, never panicking on bad input.
    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError>;

    /// Solves one instance under a cooperative [`Budget`]. The default
    /// checks the budget once and runs the unbudgeted solve — the right
    /// contract for the closed-form constructions, which finish in
    /// microseconds. Solvers with unbounded search inside (the SAT
    /// existence encoders, synthesis) override this to check at
    /// propagation/fixpoint granularity and surface trips as
    /// [`SolveError::DeadlineExceeded`] / [`SolveError::Cancelled`].
    fn solve_budgeted(&self, inst: &Instance, budget: &Budget) -> Result<Labelling, SolveError> {
        budget
            .check()
            .map_err(|e| budget_error(self.name(), budget, e))?;
        self.solve(inst)
    }
}

/// Maps a tripped [`Budget`] to the engine's typed error surface: a
/// cancellation is [`SolveError::Cancelled`]; deadline and step-quota
/// trips both surface as [`SolveError::DeadlineExceeded`] attributed to
/// the solver tier that was running (a step quota *is* a deadline
/// denominated in work instead of wall-clock).
pub(crate) fn budget_error(tier: &str, budget: &Budget, e: lcl_sat::BudgetExceeded) -> SolveError {
    match e {
        lcl_sat::BudgetExceeded::Cancelled => SolveError::Cancelled,
        lcl_sat::BudgetExceeded::Deadline { elapsed } => SolveError::DeadlineExceeded {
            tier: tier.to_string(),
            elapsed,
        },
        lcl_sat::BudgetExceeded::Steps { .. } => SolveError::DeadlineExceeded {
            tier: tier.to_string(),
            elapsed: budget.elapsed(),
        },
    }
}

/// Builder for [`Engine`]; start from [`Engine::builder`]. The builder
/// configures the *service* — registry, caches, worker pool, validation
/// policy — not a problem: problems arrive per call, through
/// [`Engine::prepare`] and the convenience entry points.
pub struct EngineBuilder {
    profile: Profile,
    rounds_budget: Option<u64>,
    max_synthesis_k: usize,
    seed: Option<u64>,
    validate: bool,
    debug_validation: bool,
    registry: Option<Arc<Registry>>,
    threads: usize,
    cache_dir: Option<std::path::PathBuf>,
    dedup: bool,
    max_prepared_plans: Option<usize>,
    stream_dedup_window: usize,
    chaos: Option<ChaosConfig>,
    atlas: Option<Arc<AtlasTable>>,
}

impl EngineBuilder {
    /// Parameter profile for the hand-built constructions (default:
    /// [`Profile::Practical`]).
    pub fn profile(mut self, profile: Profile) -> EngineBuilder {
        self.profile = profile;
        self
    }

    /// Reject solutions that need more LOCAL rounds than this budget
    /// (default: unlimited). The engine falls through to cheaper solvers
    /// and reports [`SolveError::RoundBudgetExceeded`] if none fits.
    pub fn rounds_budget(mut self, budget: u64) -> EngineBuilder {
        self.rounds_budget = Some(budget);
        self
    }

    /// Largest anchor spacing `k` synthesis may try (default: 3, the
    /// paper's 4-colouring threshold). Part of every prepared problem's
    /// cache key: plans prepared at different budgets never alias.
    pub fn max_synthesis_k(mut self, k: usize) -> EngineBuilder {
        self.max_synthesis_k = k;
        self
    }

    /// Seed for the SAT fallback's branching phases, for solution-space
    /// sampling (default: deterministic canonical solution).
    pub fn seed(mut self, seed: u64) -> EngineBuilder {
        self.seed = Some(seed);
        self
    }

    /// Re-check every labelling with the topology-native independent
    /// checker before returning it (default: on; turn off only on
    /// measured hot paths).
    pub fn validate(mut self, validate: bool) -> EngineBuilder {
        self.validate = validate;
        self
    }

    /// Cross-validate the batched round accounting against the
    /// message-passing LOCAL simulator on small torus instances
    /// (default: off — it is a debugging aid, not a production knob).
    ///
    /// When enabled, each successful torus solve with at most
    /// [`DEBUG_VALIDATION_MAX_NODES`] nodes additionally runs the
    /// Cole–Vishkin protocol — the symmetry-breaking core every `log*`
    /// solver builds on — through the real synchronous simulator on a
    /// cycle of the instance's side length, using the instance's own
    /// identifiers, and checks the batched ledger against the measured
    /// synchronous round count (the invariant of
    /// `lcl_symmetry::protocol_validation`: `ledger ≤ protocol ≤
    /// ledger + 5`). The measurements land in the [`SolveReport`] as
    /// `debug_cv_ledger_rounds` / `debug_cv_protocol_rounds` /
    /// `debug_validation`; a violated invariant is a
    /// [`SolveError::ValidationFailed`].
    pub fn debug_validation(mut self, enabled: bool) -> EngineBuilder {
        self.debug_validation = enabled;
        self
    }

    /// Share a registry (and thus its memoised synthesis cache) across
    /// engines (default: a fresh registry per engine).
    pub fn registry(mut self, registry: Arc<Registry>) -> EngineBuilder {
        self.registry = Some(registry);
        self
    }

    /// Worker threads for the batch and stream entry points (default: 1,
    /// fully sequential — the historical behaviour). `0` means "use every
    /// core the OS reports". Single-instance `solve` calls are unaffected.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = threads;
        self
    }

    /// Persist the synthesis cache under this directory so synthesised
    /// `A′ ∘ S_k` tables survive process restarts (default: no
    /// persistence).
    ///
    /// Applies to the engine's registry — including a shared one passed
    /// via [`EngineBuilder::registry`], where `build()` reconfigures the
    /// shared cache and the most recently built engine wins. When several
    /// engines share a registry, prefer configuring the directory once at
    /// registry construction ([`Registry::with_cache_dir`]) and omitting
    /// this knob.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> EngineBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// In-batch labelling dedup (default: on): jobs with the same
    /// prepared problem (by cache key), canonical topology, dimensions,
    /// and identifier assignment are solved once per batch and the
    /// labelling is shared. Solving is deterministic, so this is
    /// observationally transparent; turn it off to force every instance
    /// through a full solve (e.g. when benchmarking).
    pub fn dedup(mut self, dedup: bool) -> EngineBuilder {
        self.dedup = dedup;
        self
    }

    /// Bounds the prepared-plan memo to at most `cap` resolved plans
    /// (default: unbounded). When a `prepare` resolution pushes the memo
    /// past the cap, the least-recently-used resolved entries are evicted
    /// until it fits — the policy a service preparing *user-supplied*
    /// problem definitions needs, without hand-rolling
    /// [`Engine::clear_plans`] schedules. Outstanding
    /// `Arc<PreparedProblem>` handles stay fully usable after their entry
    /// is evicted (they own their plan), re-preparing an evicted problem
    /// re-walks the registry tiers but re-runs no SAT call (the synthesis
    /// cache is untouched), and [`Engine::clear_plans`] still drops
    /// everything at once. Evictions are counted in
    /// [`PrepareStats::evicted`]. A cap of `0` means "no memo at all":
    /// every entry is evicted as soon as the next one resolves.
    pub fn max_prepared_plans(mut self, cap: usize) -> EngineBuilder {
        self.max_prepared_plans = Some(cap);
        self
    }

    /// Bounded dedup window for [`Engine::solve_stream`] (default: 0 =
    /// off). A window of `n` keeps the last `n` distinct solved jobs
    /// (plan-key × instance-key groups, the batch path's dedup identity)
    /// in an LRU; a streamed job that matches a window entry is answered
    /// from it instead of re-solved, flagged via
    /// [`JobOutcome::deduped`] and counted by
    /// [`SolveStream::dedup_hits`] / [`Engine::stream_dedup_hits`].
    /// Solving is deterministic, so the window is observationally
    /// transparent — but it holds up to `n` labellings, so the stream's
    /// memory bound becomes `O(threads + window × nodes)`; the default
    /// keeps the documented `O(threads)` bound.
    pub fn stream_dedup_window(mut self, window: usize) -> EngineBuilder {
        self.stream_dedup_window = window;
        self
    }

    /// Arms deterministic fault injection with the default battery for a
    /// seed (default: off — chaos is compiled in but inert). See
    /// [`ChaosConfig::from_seed`] for the battery and the `chaos` module
    /// for the
    /// fault points; every injected fault is counted, so tests and the
    /// `lcl-serve` soak job can reconcile injected faults against
    /// observed typed errors.
    pub fn chaos_seed(mut self, seed: u64) -> EngineBuilder {
        self.chaos = Some(ChaosConfig::from_seed(seed));
        self
    }

    /// Arms deterministic fault injection with an explicit config —
    /// the targeted-single-fault knob ([`ChaosConfig::quiet`] plus the
    /// one period under test).
    pub fn chaos_config(mut self, config: ChaosConfig) -> EngineBuilder {
        self.chaos = Some(config);
        self
    }

    /// Arms the engine with a census lookup table loaded from an
    /// `lcl-atlas` artifact (default: none). Every `prepare` then
    /// canonicalises the spec's block table and, on a census hit, seeds
    /// the prepared handle's classification from the artifact —
    /// [`PreparedProblem::classify`] answers without running synthesis,
    /// and solve reports carry an `atlas` provenance detail. See
    /// [`AtlasTable`] for the verdict-soundness gate (`Global` census
    /// verdicts only seed engines whose
    /// [`max_synthesis_k`](EngineBuilder::max_synthesis_k) is at most
    /// the census one).
    pub fn atlas(mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<EngineBuilder> {
        self.atlas = Some(Arc::new(AtlasTable::load(path)?));
        Ok(self)
    }

    /// Arms the engine with an already-loaded census table (the
    /// share-one-table-across-engines form of [`EngineBuilder::atlas`]).
    pub fn atlas_table(mut self, table: Arc<AtlasTable>) -> EngineBuilder {
        self.atlas = Some(table);
        self
    }

    /// Builds the engine. Infallible: the engine carries no problem of
    /// its own — plans resolve per problem in [`Engine::prepare`], where
    /// misconfiguration surfaces as a typed [`SolveError`].
    pub fn build(self) -> Engine {
        let registry = self.registry.unwrap_or_default();
        if let Some(dir) = self.cache_dir {
            registry.set_cache_dir(Some(dir));
        }
        let chaos = self.chaos.map(|config| Arc::new(ChaosState::new(config)));
        if chaos.is_some() {
            // Like the cache directory, the injector is registry state
            // (the persist fault points live in the synthesis cache);
            // with a shared registry the most recently armed engine wins.
            registry.set_chaos(chaos.clone());
        }
        Engine {
            registry,
            health: Arc::new(Health::new()),
            chaos,
            atlas: self.atlas,
            opts: PlanOptions {
                profile: self.profile,
                max_synthesis_k: self.max_synthesis_k,
                seed: self.seed,
            },
            rounds_budget: self.rounds_budget,
            validate: self.validate,
            debug_validation: self.debug_validation,
            threads: self.threads,
            dedup: self.dedup,
            max_prepared_plans: self.max_prepared_plans,
            stream_dedup_window: self.stream_dedup_window,
            plans: Mutex::new(HashMap::new()),
            plan_clock: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plans_resolved: AtomicU64::new(0),
            plans_evicted: AtomicU64::new(0),
            stream_dedup_hits: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Largest instance (in nodes) the opt-in
/// [`EngineBuilder::debug_validation`] cross-check runs on; larger solves
/// skip it silently (the simulator cross-check is a small-instance
/// debugging aid by design).
pub const DEBUG_VALIDATION_MAX_NODES: usize = 4096;

/// Counters of the engine's prepared-plan memo (see [`Engine::prepare`]):
/// how many `prepare` requests were answered from the memo versus how
/// many actually resolved a plan. `hits + resolved` equals the total
/// number of `prepare` calls (including the ones issued internally by the
/// spec-taking convenience entry points).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrepareStats {
    /// Requests answered from the memoised plan (or by blocking on a
    /// concurrent resolution of the same key).
    pub hits: u64,
    /// Plans actually resolved (registry tier walk performed).
    pub resolved: u64,
    /// Resolved plans evicted by the
    /// [`EngineBuilder::max_prepared_plans`] LRU cap.
    pub evicted: u64,
}

/// The shared, problem-agnostic solving service: one engine per process
/// (or per configuration), however many problems it serves.
///
/// An `Engine` owns no problem. It holds the [`Registry`] (and through it
/// the memoised synthesis cache), the worker-pool and dedup
/// configuration, and a memo of [`PreparedProblem`] plans keyed by the
/// canonical problem cache key. It is `Send + Sync`: wrap it in an `Arc`
/// and share it across threads; every entry point takes `&self`.
///
/// Two ways in:
///
/// * [`Engine::prepare`] — resolve a problem's plan once, keep the cheap
///   [`Arc<PreparedProblem>`] handle, and solve through it (the service
///   shape: prepare at startup, solve per request).
/// * [`Engine::solve`] / [`Engine::solvable`] / [`Engine::classify`] —
///   spec-taking conveniences that prepare-and-memoise internally, so
///   repeated calls with equivalent specs (two compilations of one
///   `lcl-lang` source, a compiled problem and an equal hand-built
///   table) share one plan.
pub struct Engine {
    registry: Arc<Registry>,
    /// Per-solver circuit breakers and robustness counters, shared with
    /// every prepared plan this engine resolves.
    health: Arc<Health>,
    /// Armed fault injector (None = inert), shared with the registry's
    /// synthesis cache, every prepared plan, and the stream dedup window.
    chaos: Option<Arc<ChaosState>>,
    /// Census lookup table (None = no atlas): consulted once per plan
    /// resolution to seed classifications from the checked-in artifact.
    atlas: Option<Arc<AtlasTable>>,
    opts: PlanOptions,
    rounds_budget: Option<u64>,
    validate: bool,
    debug_validation: bool,
    threads: usize,
    dedup: bool,
    max_prepared_plans: Option<usize>,
    stream_dedup_window: usize,
    /// Prepared-plan memo: canonical cache key → single-flight cell, the
    /// same shape as the registry's synthesis cache (one resolution per
    /// key, concurrent requests block on the cell, poisoned map locks
    /// recover), plus a last-used stamp for the optional LRU cap.
    plans: Mutex<HashMap<String, PlanSlot>>,
    /// Monotone stamp source for the memo's LRU ordering.
    plan_clock: AtomicU64,
    plan_hits: AtomicU64,
    plans_resolved: AtomicU64,
    plans_evicted: AtomicU64,
    /// Cumulative stream dedup-window hits; `Arc`ed because stream
    /// workers are detached `'static` threads that may outlive the
    /// engine.
    stream_dedup_hits: Arc<AtomicU64>,
}

/// One prepared-plan memo entry: the single-flight cell and the stamp of
/// its most recent use (consulted by the
/// [`EngineBuilder::max_prepared_plans`] eviction policy).
struct PlanSlot {
    cell: Arc<OnceLock<Result<Arc<PreparedProblem>, SolveError>>>,
    last_used: u64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::builder().build()
    }
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            atlas: None,
            profile: Profile::Practical,
            rounds_budget: None,
            max_synthesis_k: 3,
            seed: None,
            validate: true,
            debug_validation: false,
            registry: None,
            threads: 1,
            cache_dir: None,
            dedup: true,
            max_prepared_plans: None,
            stream_dedup_window: 0,
            chaos: None,
        }
    }

    /// The registry backing this engine.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The engine's health ledger: per-solver circuit breakers, per-tier
    /// timeout/fallback counters, dedup-poison recoveries.
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// The armed fault injector, if any (see
    /// [`EngineBuilder::chaos_seed`]).
    pub fn chaos(&self) -> Option<&Arc<ChaosState>> {
        self.chaos.as_ref()
    }

    /// The armed census lookup table, if any (see
    /// [`EngineBuilder::atlas`]).
    pub fn atlas(&self) -> Option<&Arc<AtlasTable>> {
        self.atlas.as_ref()
    }

    /// The synthesis frontier this engine plans against (see
    /// [`EngineBuilder::max_synthesis_k`]). Census artifacts record it so
    /// verdict consumers can apply the `k`-soundness gate.
    pub fn max_synthesis_k(&self) -> usize {
        self.opts.max_synthesis_k
    }

    /// Resolves the solver plan for a problem into an immutable,
    /// cheaply-cloneable [`PreparedProblem`] handle — the registry tier
    /// walk, the canonical cache key, and the per-topology capability
    /// table are fixed here, once. Handles are memoised by the canonical
    /// cache key ([`Registry::plan_cache_key`]): preparing two equivalent
    /// specs returns the *same* `Arc` (pointer-equal), and concurrent
    /// `prepare` calls for one key resolve the plan exactly once.
    ///
    /// A problem no registered solver applies to is a typed
    /// [`SolveError::NoSolver`] (memoised like any other verdict).
    ///
    /// Deriving the key is `O(table)` for block problems (the canonical
    /// content hash is what lets equivalent specs share a plan), and it
    /// is paid on every `prepare` — including the one inside each
    /// spec-taking convenience call. Hot paths should prepare once and
    /// hold the handle rather than re-presenting the spec per request.
    pub fn prepare(&self, spec: &ProblemSpec) -> Result<Arc<PreparedProblem>, SolveError> {
        let mut span = lcl_trace::span(lcl_trace::SpanKind::Prepare, "prepare");
        let key = self
            .registry
            .plan_cache_key(spec, self.opts.max_synthesis_k);
        let stamp = self.plan_clock.fetch_add(1, Ordering::Relaxed);
        let cell = {
            let mut plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
            let slot = plans.entry(key.clone()).or_insert_with(|| PlanSlot {
                cell: Arc::new(OnceLock::new()),
                last_used: stamp,
            });
            slot.last_used = stamp;
            Arc::clone(&slot.cell)
        };
        let mut resolved_here = false;
        let outcome = cell.get_or_init(|| {
            resolved_here = true;
            self.resolve_plan(spec, &key)
        });
        if resolved_here {
            self.plans_resolved.fetch_add(1, Ordering::Relaxed);
            self.evict_lru_plans(&key);
        } else {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
        }
        span.count(0, u64::from(!resolved_here)); // cache_hit
        outcome.clone()
    }

    /// Enforces the [`EngineBuilder::max_prepared_plans`] cap after a
    /// resolution: evicts least-recently-used *resolved* entries (never
    /// the just-used `keep` key, never in-flight single-flight cells)
    /// until the memo fits. No-op without a configured cap.
    fn evict_lru_plans(&self, keep: &str) {
        let Some(cap) = self.max_prepared_plans else {
            return;
        };
        let mut plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        while plans.len() > cap {
            let victim = plans
                .iter()
                .filter(|(key, slot)| key.as_str() != keep && slot.cell.get().is_some())
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone());
            match victim {
                Some(key) => {
                    plans.remove(&key);
                    self.plans_evicted.fetch_add(1, Ordering::Relaxed);
                }
                // Everything left is in flight or the protected key.
                None => break,
            }
        }
    }

    /// The uncached plan resolution behind [`Engine::prepare`].
    fn resolve_plan(
        &self,
        spec: &ProblemSpec,
        cache_key: &str,
    ) -> Result<Arc<PreparedProblem>, SolveError> {
        let plan = {
            let _span = lcl_trace::span(lcl_trace::SpanKind::Resolve, "registry-resolve");
            self.registry.plan(spec, &self.opts)
        };
        if plan.is_empty() {
            return Err(SolveError::NoSolver {
                problem: spec.name().to_string(),
            });
        }
        // Memoise the lcl-analyze report into the handle: DSL-compiled
        // specs already carry a span-bearing one; raw block specs get a
        // span-free analysis of their tabulated block table, computed
        // once here (the handle itself is memoised per cache key).
        let analysis = {
            let _span = lcl_trace::span(lcl_trace::SpanKind::Analysis, "analysis");
            match spec.analysis() {
                Some(a) => Some(Arc::clone(a)),
                None => spec
                    .to_block_lcl()
                    .map(|lcl| Arc::new(lcl_analyze::analyze_block(spec.name(), &lcl))),
            }
        };
        // Census lookup: canonicalise the spec's block table and seed
        // the classification from the atlas artifact on a hit, so
        // `classify` answers without any synthesis SAT work.
        let atlas_seed = self
            .atlas
            .as_ref()
            .and_then(|table| table.seed_for(spec, self.opts.max_synthesis_k));
        Ok(Arc::new(PreparedProblem::new(
            spec.clone(),
            cache_key.to_string(),
            plan,
            Arc::clone(&self.registry),
            self.opts,
            self.rounds_budget,
            self.validate,
            self.debug_validation,
            Arc::clone(&self.health),
            self.chaos.clone(),
            analysis,
            atlas_seed,
        )))
    }

    /// Number of distinct prepared plans memoised so far (resolved or
    /// verdict-cached failures).
    pub fn prepared_plans(&self) -> usize {
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|slot| slot.cell.get().is_some())
            .count()
    }

    /// Prepared-plan memo counters since this engine was built.
    pub fn prepare_stats(&self) -> PrepareStats {
        PrepareStats {
            hits: self.plan_hits.load(Ordering::Relaxed),
            resolved: self.plans_resolved.load(Ordering::Relaxed),
            evicted: self.plans_evicted.load(Ordering::Relaxed),
        }
    }

    /// Total [`Engine::solve_stream`] jobs (across every stream this
    /// engine has run) answered from the bounded dedup window instead of
    /// a fresh solve; see [`EngineBuilder::stream_dedup_window`].
    pub fn stream_dedup_hits(&self) -> u64 {
        self.stream_dedup_hits.load(Ordering::Relaxed)
    }

    /// Drops every memoised prepared plan (successes and cached failure
    /// verdicts alike). The memo otherwise grows by one entry per
    /// distinct canonical cache key for the engine's lifetime — a
    /// long-lived service preparing *user-supplied* problem definitions
    /// should bound that growth by clearing periodically. Outstanding
    /// `Arc<PreparedProblem>` handles stay fully usable (they own their
    /// plan and registry), and the registry's synthesis cache is
    /// untouched, so re-preparing a cleared problem re-walks the
    /// registry tiers but re-runs no SAT call.
    pub fn clear_plans(&self) {
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Convenience: prepares the problem (memoised) and solves one
    /// instance. Equivalent to `self.prepare(spec)?.solve(inst)`; see
    /// [`PreparedProblem::solve`] for the dispatch contract.
    pub fn solve(&self, spec: &ProblemSpec, inst: &Instance) -> Result<Labelling, SolveError> {
        self.prepare(spec)?.solve(inst)
    }

    /// [`Engine::solve`] under a cooperative [`Budget`] (deadline, step
    /// quota, cancellation token). See [`PreparedProblem::solve_with`]
    /// for the degradation contract: a timed-out tier falls back to the
    /// next registry tier when one completes in time, otherwise the call
    /// returns typed [`SolveError::DeadlineExceeded`] /
    /// [`SolveError::Cancelled`] — and the engine, its caches, and the
    /// plan stay fully reusable.
    pub fn solve_with(
        &self,
        spec: &ProblemSpec,
        inst: &Instance,
        budget: &Budget,
    ) -> Result<Labelling, SolveError> {
        self.prepare(spec)?.solve_with(inst, budget)
    }

    /// Convenience: prepares the problem (memoised) and decides whether it
    /// has *any* valid labelling on the instance's topology and
    /// dimensions. See [`PreparedProblem::solvable`].
    pub fn solvable(&self, spec: &ProblemSpec, inst: &Instance) -> Result<bool, SolveError> {
        self.prepare(spec)?.solvable(inst)
    }

    /// Convenience: prepares the problem (memoised) and classifies it on
    /// the torus landscape. See [`PreparedProblem::classify`].
    pub fn classify(&self, spec: &ProblemSpec) -> Result<GridClass, SolveError> {
        self.prepare(spec)?.classify()
    }

    /// [`Engine::classify`] under a cooperative [`Budget`]. A budget trip
    /// mid-synthesis returns a typed error *without* memoising a verdict:
    /// the classification cache only ever holds completed computations.
    pub fn classify_with(
        &self,
        spec: &ProblemSpec,
        budget: &Budget,
    ) -> Result<GridClass, SolveError> {
        self.prepare(spec)?.classify_with(budget)
    }

    /// Resolves the configured worker-thread count (`0` = all cores).
    pub(crate) fn worker_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
    }

    /// Whether in-batch labelling dedup is enabled.
    pub(crate) fn dedup_enabled(&self) -> bool {
        self.dedup
    }

    /// The configured stream dedup window size (0 = off).
    pub(crate) fn stream_dedup_window(&self) -> usize {
        self.stream_dedup_window
    }

    /// The engine-cumulative stream dedup-hit counter, shared with the
    /// detached stream workers.
    pub(crate) fn stream_dedup_hits_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.stream_dedup_hits)
    }
}

/// Encodes a pseudoforest as per-node out-pointer labels (0 = none,
/// 1 = north, 2 = east, 3 = south, 4 = west).
pub(crate) fn encode_forest(grid: &BoundaryGrid, forest: &PseudoForest) -> Vec<Label> {
    let m = grid.side();
    let mut labels = vec![0 as Label; m * m];
    for &(u, v) in &forest.arcs {
        let (ux, uy) = (u % m, u / m);
        let (vx, vy) = (v % m, v / m);
        labels[u] = match (vx as i64 - ux as i64, vy as i64 - uy as i64) {
            (0, 1) => 1,
            (1, 0) => 2,
            (0, -1) => 3,
            (-1, 0) => 4,
            _ => unreachable!("checked arcs are grid edges"),
        };
    }
    labels
}

/// Decodes out-pointer labels back to a [`PseudoForest`] (the inverse of
/// the encoding used by the registered boundary-paths solver), for
/// re-validation with [`lcl_algorithms::corner::check`].
pub fn decode_forest(grid: &BoundaryGrid, labels: &[Label]) -> PseudoForest {
    let m = grid.side();
    let mut arcs = Vec::new();
    for (u, &l) in labels.iter().enumerate() {
        let (x, y) = ((u % m) as i64, (u / m) as i64);
        let (dx, dy) = match l {
            0 => continue,
            1 => (0, 1),
            2 => (1, 0),
            3 => (0, -1),
            4 => (-1, 0),
            _ => continue,
        };
        let (vx, vy) = (x + dx, y + dy);
        if vx < 0 || vy < 0 || vx >= m as i64 || vy >= m as i64 {
            continue;
        }
        arcs.push((u, (vy as usize) * m + vx as usize));
    }
    PseudoForest { arcs }
}
