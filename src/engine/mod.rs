//! The unified engine: one entry point for every LCL problem, algorithm,
//! and topology in this repository.
//!
//! The paper shows that every radius-1 LCL on oriented grids reduces to
//! one normal form and one complexity landscape — in every dimension; this
//! module gives the code base the matching shape. A [`ProblemSpec`] is the
//! canonical problem representation, an [`Instance`] is the canonical
//! input — one currency over 2-d tori, d-dimensional tori, and boundary
//! grids — and a [`Registry`] maps each `(problem, topology)` pair to the
//! best available solvers (hand-built §8/§10 constructions, §7 synthesis
//! with memoised SAT calls, the d-dimensional Theorem 21 constructions,
//! corner coordination, the `Θ(n)` SAT existence baseline). An [`Engine`]
//! walks that plan with a `Result`-based, panic-free surface:
//!
//! ```
//! use lcl_grids::engine::{Engine, Instance, ProblemSpec};
//! use lcl_grids::local::IdAssignment;
//!
//! let engine = Engine::builder()
//!     .problem(ProblemSpec::orientation(
//!         lcl_grids::core::problems::XSet::from_degrees(&[1, 3, 4]),
//!     ))
//!     .max_synthesis_k(1)
//!     .build()
//!     .unwrap();
//! let inst = Instance::square(12, &IdAssignment::Shuffled { seed: 7 });
//! let labelling = engine.solve(&inst).unwrap();
//! assert_eq!(labelling.labels.len(), 144);
//! assert!(labelling.report.validated);
//!
//! // The same engine API covers d-dimensional tori: edge 2d-colouring on
//! // a 3-dimensional torus dispatches to the Theorem 21 construction.
//! let cube = Engine::builder()
//!     .problem(ProblemSpec::edge_colouring(6))
//!     .max_synthesis_k(1)
//!     .build()
//!     .unwrap();
//! let inst3 = Instance::torus_d(3, 4, &IdAssignment::Sequential);
//! let labelling3 = cube.solve(&inst3).unwrap();
//! assert_eq!(labelling3.labels.len(), 64);
//! ```
//!
//! Failures are values, not panics: unsolvable instances, undersized
//! tori, unsupported `(problem, topology)` pairs, exhausted synthesis
//! budgets, and exceeded round budgets all come back as [`SolveError`]
//! variants.

mod batch;
mod error;
mod instance;
mod pool;
mod registry;
mod spec;

pub use batch::BatchReport;
pub use error::SolveError;
pub use instance::Instance;
pub use registry::{PlanOptions, Registry, SynthOrigin, SynthStats};
pub use spec::{ProblemSpec, Topology};

use lcl_algorithms::corner::{BoundaryGrid, PseudoForest};
use lcl_algorithms::Profile;
use lcl_core::classify::GridClass;
use lcl_core::{existence, Label};
use lcl_grid::CycleGraph;
use lcl_local::{Rounds, Simulator};
use lcl_symmetry::protocol_validation::CvProtocol;
use std::fmt;
use std::sync::Arc;

/// Asymptotic round complexity a solver promises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Complexity {
    /// `O(1)` rounds.
    Constant,
    /// `O(log* n)` rounds.
    LogStar,
    /// `Θ(√n)` rounds (corner coordination).
    SqrtN,
    /// `Θ(n)` rounds (gather everything).
    Linear,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Constant => write!(f, "O(1)"),
            Complexity::LogStar => write!(f, "O(log* n)"),
            Complexity::SqrtN => write!(f, "Θ(√n)"),
            Complexity::Linear => write!(f, "Θ(n)"),
        }
    }
}

/// The family of topologies a solver accepts — the coarse dispatch
/// dimension of [`Capabilities`]. Finer constraints (dimension-dependent
/// palette sizes, parity of the side length) are the solver's own
/// business and surface as typed per-instance errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySupport {
    /// Exactly the oriented 2-d torus.
    Torus2,
    /// Oriented tori of every dimension `d ≥ 2` (2-d instances are
    /// presented to the solver in their `Torus2` form).
    AnyTorusD,
    /// Boundary grids.
    Boundary,
}

impl TopologySupport {
    /// True iff a solver with this support accepts an instance of the
    /// given topology.
    pub fn accepts(self, topology: Topology) -> bool {
        matches!(
            (self, topology),
            (TopologySupport::Torus2, Topology::Torus2)
                | (
                    TopologySupport::AnyTorusD,
                    Topology::Torus2 | Topology::TorusD { .. }
                )
                | (TopologySupport::Boundary, Topology::Boundary)
        )
    }
}

/// What a solver supports: consulted by the engine before dispatch.
#[derive(Clone, Copy, Debug)]
pub struct Capabilities {
    /// The topology family the solver runs on.
    pub topology: TopologySupport,
    /// Smallest supported side length.
    pub min_side: usize,
    /// True if only equal side lengths are supported.
    pub square_only: bool,
    /// Promised asymptotic round complexity.
    pub complexity: Complexity,
}

/// Metadata accompanying every labelling: which solver ran, what it
/// charged the LOCAL-round ledger, and whether the output was re-checked.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The problem that was solved.
    pub problem: String,
    /// The solver that produced the labelling.
    pub solver: String,
    /// The LOCAL round ledger (phase-by-phase, see `lcl_local::Rounds`).
    pub rounds: Rounds,
    /// True once the engine has re-validated the labelling with the
    /// topology-native independent checker.
    pub validated: bool,
    /// Solver-specific diagnostics (spacing `ℓ`, anchor counts, measured
    /// gaps, lookup-table sizes, …) as key/value pairs.
    pub details: Vec<(String, String)>,
}

impl SolveReport {
    pub(crate) fn new(problem: &str, solver: &str, rounds: Rounds) -> SolveReport {
        SolveReport {
            problem: problem.to_string(),
            solver: solver.to_string(),
            rounds,
            validated: false,
            details: Vec::new(),
        }
    }

    pub(crate) fn with_detail(mut self, key: &str, value: impl ToString) -> SolveReport {
        self.details.push((key.to_string(), value.to_string()));
        self
    }

    /// Looks up a solver-specific diagnostic by key.
    pub fn detail(&self, key: &str) -> Option<&str> {
        self.details
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A solved instance: one label per node plus the [`SolveReport`].
#[derive(Clone, Debug)]
pub struct Labelling {
    /// One label per node, in node-index order.
    pub labels: Vec<Label>,
    /// Provenance and round accounting.
    pub report: SolveReport,
}

/// A solver the engine can dispatch to: the object the [`Registry`] hands
/// out, and the extension point for new algorithm families. Solvers take
/// the topology-polymorphic [`Instance`]; the engine only routes
/// instances whose topology the solver's [`Capabilities`] accept.
pub trait Solve: Send + Sync {
    /// Stable solver name for reports and errors.
    fn name(&self) -> &str;

    /// What instances this solver accepts.
    fn capabilities(&self) -> Capabilities;

    /// Solves one instance, never panicking on bad input.
    fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError>;
}

/// Builder for [`Engine`]; start from [`Engine::builder`].
pub struct EngineBuilder {
    problem: Option<ProblemSpec>,
    profile: Profile,
    rounds_budget: Option<u64>,
    max_synthesis_k: usize,
    seed: Option<u64>,
    validate: bool,
    debug_validation: bool,
    registry: Option<Arc<Registry>>,
    threads: usize,
    cache_dir: Option<std::path::PathBuf>,
    dedup: bool,
}

impl EngineBuilder {
    /// The problem the engine will solve (required).
    pub fn problem(mut self, spec: ProblemSpec) -> EngineBuilder {
        self.problem = Some(spec);
        self
    }

    /// Parameter profile for the hand-built constructions (default:
    /// [`Profile::Practical`]).
    pub fn profile(mut self, profile: Profile) -> EngineBuilder {
        self.profile = profile;
        self
    }

    /// Reject solutions that need more LOCAL rounds than this budget
    /// (default: unlimited). The engine falls through to cheaper solvers
    /// and reports [`SolveError::RoundBudgetExceeded`] if none fits.
    pub fn rounds_budget(mut self, budget: u64) -> EngineBuilder {
        self.rounds_budget = Some(budget);
        self
    }

    /// Largest anchor spacing `k` synthesis may try (default: 3, the
    /// paper's 4-colouring threshold).
    pub fn max_synthesis_k(mut self, k: usize) -> EngineBuilder {
        self.max_synthesis_k = k;
        self
    }

    /// Seed for the SAT fallback's branching phases, for solution-space
    /// sampling (default: deterministic canonical solution).
    pub fn seed(mut self, seed: u64) -> EngineBuilder {
        self.seed = Some(seed);
        self
    }

    /// Re-check every labelling with the topology-native independent
    /// checker before returning it (default: on; turn off only on
    /// measured hot paths).
    pub fn validate(mut self, validate: bool) -> EngineBuilder {
        self.validate = validate;
        self
    }

    /// Cross-validate the batched round accounting against the
    /// message-passing LOCAL simulator on small torus instances
    /// (default: off — it is a debugging aid, not a production knob).
    ///
    /// When enabled, each successful torus solve with at most
    /// [`DEBUG_VALIDATION_MAX_NODES`] nodes additionally runs the
    /// Cole–Vishkin protocol — the symmetry-breaking core every `log*`
    /// solver builds on — through the real synchronous simulator on a
    /// cycle of the instance's side length, using the instance's own
    /// identifiers, and checks the batched ledger against the measured
    /// synchronous round count (the invariant of
    /// `lcl_symmetry::protocol_validation`: `ledger ≤ protocol ≤
    /// ledger + 5`). The measurements land in the [`SolveReport`] as
    /// `debug_cv_ledger_rounds` / `debug_cv_protocol_rounds` /
    /// `debug_validation`; a violated invariant is a
    /// [`SolveError::ValidationFailed`].
    pub fn debug_validation(mut self, enabled: bool) -> EngineBuilder {
        self.debug_validation = enabled;
        self
    }

    /// Share a registry (and thus its memoised synthesis cache) across
    /// engines (default: a fresh registry per engine).
    pub fn registry(mut self, registry: Arc<Registry>) -> EngineBuilder {
        self.registry = Some(registry);
        self
    }

    /// Worker threads for [`Engine::solve_batch`] (default: 1, fully
    /// sequential — the historical behaviour). `0` means "use every core
    /// the OS reports". Single-instance `solve` calls are unaffected.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = threads;
        self
    }

    /// Persist the synthesis cache under this directory so synthesised
    /// `A′ ∘ S_k` tables survive process restarts (default: no
    /// persistence).
    ///
    /// Applies to the engine's registry — including a shared one passed
    /// via [`EngineBuilder::registry`], where `build()` reconfigures the
    /// shared cache and the most recently built engine wins. When several
    /// engines share a registry, prefer configuring the directory once at
    /// registry construction ([`Registry::with_cache_dir`]) and omitting
    /// this knob.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> EngineBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// In-batch labelling dedup (default: on): instances with the same
    /// canonical topology, dimensions, and identifier assignment are
    /// solved once per batch and the labelling is shared. Solving is
    /// deterministic, so this is observationally transparent; turn it off
    /// to force every instance through a full solve (e.g. when
    /// benchmarking).
    pub fn dedup(mut self, dedup: bool) -> EngineBuilder {
        self.dedup = dedup;
        self
    }

    /// Builds the engine, resolving the solver plan now so that
    /// misconfiguration surfaces here rather than at solve time.
    pub fn build(self) -> Result<Engine, SolveError> {
        let spec = self.problem.ok_or(SolveError::MissingProblem)?;
        let registry = self.registry.unwrap_or_default();
        if let Some(dir) = self.cache_dir {
            registry.set_cache_dir(Some(dir));
        }
        let opts = PlanOptions {
            profile: self.profile,
            max_synthesis_k: self.max_synthesis_k,
            seed: self.seed,
        };
        let plan = registry.plan(&spec, &opts);
        if plan.is_empty() {
            return Err(SolveError::NoSolver {
                problem: spec.name().to_string(),
            });
        }
        Ok(Engine {
            spec,
            plan,
            registry,
            opts,
            rounds_budget: self.rounds_budget,
            validate: self.validate,
            debug_validation: self.debug_validation,
            threads: self.threads,
            dedup: self.dedup,
        })
    }
}

/// Largest instance (in nodes) the opt-in
/// [`EngineBuilder::debug_validation`] cross-check runs on; larger solves
/// skip it silently (the simulator cross-check is a small-instance
/// debugging aid by design).
pub const DEBUG_VALIDATION_MAX_NODES: usize = 4096;

/// The single entry point: solves its problem on any supported
/// [`Instance`] through the best applicable registered solver.
pub struct Engine {
    spec: ProblemSpec,
    plan: Vec<Box<dyn Solve>>,
    registry: Arc<Registry>,
    opts: PlanOptions,
    rounds_budget: Option<u64>,
    validate: bool,
    debug_validation: bool,
    threads: usize,
    dedup: bool,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            problem: None,
            profile: Profile::Practical,
            rounds_budget: None,
            max_synthesis_k: 3,
            seed: None,
            validate: true,
            debug_validation: false,
            registry: None,
            threads: 1,
            cache_dir: None,
            dedup: true,
        }
    }

    /// The problem this engine solves.
    pub fn problem(&self) -> &ProblemSpec {
        &self.spec
    }

    /// The registry backing this engine.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The resolved solver plan, best first (across all topologies the
    /// problem has registered solvers on).
    pub fn solver_names(&self) -> Vec<&str> {
        self.plan.iter().map(|s| s.name()).collect()
    }

    /// Solves one instance on any supported topology.
    ///
    /// 2-dimensional `TorusD` instances are lowered to their canonical
    /// `Torus2` form first, then the engine walks the solver plan:
    /// solvers whose [`Capabilities`] reject the instance's topology or
    /// size are skipped, typed per-solver failures fall through to the
    /// next solver, and successful labellings are re-validated with the
    /// topology-native independent checker before being returned. A
    /// `(problem, topology)` pair no registered solver covers comes back
    /// as [`SolveError::UnsupportedTopology`].
    pub fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        let lowered = inst.lower_d2();
        let inst = lowered.as_ref().unwrap_or(inst);
        let topology = inst.topology();
        if !self.spec.supports(topology) {
            return Err(SolveError::UnsupportedTopology {
                problem: self.spec.name().to_string(),
                topology: topology.to_string(),
                reason: format!(
                    "{} has no semantics on a {topology}; its home is the {}",
                    self.spec.name(),
                    self.spec.home_topology()
                ),
            });
        }
        let side = inst.min_side();
        let mut topology_covered = false;
        let mut cheapest_over_budget: Option<u64> = None;
        let mut smallest_supported: Option<usize> = None;
        let mut fallthrough: Option<SolveError> = None;
        for solver in &self.plan {
            let caps = solver.capabilities();
            if !caps.topology.accepts(topology) {
                continue;
            }
            topology_covered = true;
            if caps.square_only && !inst.is_square() {
                continue;
            }
            if side < caps.min_side {
                smallest_supported =
                    Some(smallest_supported.map_or(caps.min_side, |m: usize| m.min(caps.min_side)));
                continue;
            }
            match solver.solve(inst) {
                Ok(mut labelling) => {
                    if self.validate {
                        if let Err(violation) = self.spec.check_instance(inst, &labelling.labels) {
                            fallthrough.get_or_insert(SolveError::ValidationFailed {
                                solver: solver.name().to_string(),
                                violation,
                            });
                            continue;
                        }
                        labelling.report.validated = true;
                    }
                    if self.debug_validation {
                        self.cross_validate_rounds(inst, &mut labelling.report)?;
                    }
                    let needed = labelling.report.rounds.total();
                    if let Some(budget) = self.rounds_budget {
                        if needed > budget {
                            cheapest_over_budget =
                                Some(cheapest_over_budget.map_or(needed, |c: u64| c.min(needed)));
                            continue;
                        }
                    }
                    return Ok(labelling);
                }
                // Unsatisfiability is exact: no other solver can succeed.
                Err(e @ SolveError::Unsolvable { .. }) => return Err(e),
                Err(SolveError::TorusTooSmall { min_side, .. }) => {
                    smallest_supported =
                        Some(smallest_supported.map_or(min_side, |m: usize| m.min(min_side)));
                }
                Err(e) => {
                    fallthrough.get_or_insert(e);
                }
            }
        }
        if !topology_covered {
            return Err(SolveError::UnsupportedTopology {
                problem: self.spec.name().to_string(),
                topology: topology.to_string(),
                reason: "no registered solver covers this (problem, topology) pair".to_string(),
            });
        }
        if let (Some(needed), Some(budget)) = (cheapest_over_budget, self.rounds_budget) {
            return Err(SolveError::RoundBudgetExceeded { budget, needed });
        }
        if let Some(e) = fallthrough {
            return Err(e);
        }
        if let Some(min_side) = smallest_supported {
            return Err(SolveError::TorusTooSmall {
                problem: self.spec.name().to_string(),
                min_side,
                side,
            });
        }
        Err(SolveError::NoSolver {
            problem: self.spec.name().to_string(),
        })
    }

    /// Decides whether the problem has *any* valid labelling on the
    /// instance's topology and dimensions (independent of round budgets
    /// and identifier assignments).
    ///
    /// On 2-d tori (and lowered `d = 2` instances) this is the exact SAT
    /// existence question; on higher-dimensional tori it is answered by
    /// the paper's counting arguments where those apply (Theorem 21 for
    /// edge `2d`-colouring, §10 for larger palettes, the Cartesian-product
    /// chromatic bound for vertex colouring); unsupported pairs come back
    /// as [`SolveError::UnsupportedTopology`].
    pub fn solvable(&self, inst: &Instance) -> Result<bool, SolveError> {
        let lowered = inst.lower_d2();
        let inst = lowered.as_ref().unwrap_or(inst);
        let topology = inst.topology();
        let unsupported = |reason: String| SolveError::UnsupportedTopology {
            problem: self.spec.name().to_string(),
            topology: topology.to_string(),
            reason,
        };
        if !self.spec.supports(topology) {
            return Err(unsupported(format!(
                "{} has no semantics on a {topology}",
                self.spec.name()
            )));
        }
        if self.spec.mis_power_params().is_some() {
            // The greedy sweep always produces a maximal independent set.
            return Ok(true);
        }
        match inst {
            Instance::Boundary(_) => Ok(true), // the boundary-paths witness
            Instance::Torus2(gi) => {
                let problem = self
                    .spec
                    .grid_problem()
                    .ok_or_else(|| unsupported("not a block problem".to_string()))?;
                Ok(existence::solvable(problem, &gi.torus()))
            }
            Instance::TorusD(di) => {
                use lcl_core::GridProblem;
                let n = di.side();
                let d = di.dim();
                if n == 1 {
                    // A side-1 torus has no edges: everything labels.
                    return Ok(true);
                }
                match self.spec.grid_problem() {
                    Some(GridProblem::EdgeColouring { k }) => {
                        let k = usize::from(*k);
                        if k < 2 * d {
                            Ok(false) // fewer colours than the degree
                        } else if k == 2 * d {
                            Ok(n % 2 == 0) // Theorem 21, exactly
                        } else {
                            Ok(true) // §10: 2d+1 colours always suffice
                        }
                    }
                    Some(GridProblem::VertexColouring { k }) => {
                        // χ of a Cartesian product of cycles is
                        // max over the factors: 2 for even n, 3 for odd.
                        let chi = if n % 2 == 0 { 2 } else { 3 };
                        Ok(usize::from(*k) >= chi)
                    }
                    Some(p) => match spec::ddim_semantics(p, d) {
                        Some(spec::DdimSemantics::IndependentSet) => Ok(true),
                        Some(spec::DdimSemantics::Pairwise(pairs)) => {
                            // The d-dimensional SAT existence encoder:
                            // exact verdicts for axis-symmetric pairwise
                            // problems (compiled lcl-lang definitions
                            // included) beyond the tabulated formulas.
                            Ok(
                                existence::solve_pairwise_d(di.torus(), p.alphabet(), &pairs)
                                    .is_some(),
                            )
                        }
                        _ => Err(unsupported(
                            "existence is not tabulated for this problem in d ≥ 3".to_string(),
                        )),
                    },
                    None => Err(unsupported("not a block problem".to_string())),
                }
            }
        }
    }

    /// The one-sided classification adapter (§7): `Constant` if a
    /// constant labelling works, `LogStar` with certainty if a certified
    /// hand-built `O(log* n)` solver is registered or synthesis succeeds
    /// within the engine's `k` budget (memoised), `Global` otherwise —
    /// which, by Theorem 3, no procedure can sharpen.
    pub fn classify(&self) -> Result<GridClass, SolveError> {
        if self.spec.home_topology() == Topology::Boundary {
            return Err(SolveError::UnsupportedTopology {
                problem: self.spec.name().to_string(),
                topology: Topology::Boundary.to_string(),
                reason: "classification covers the torus landscape (Theorem 1)".to_string(),
            });
        }
        if self.spec.constant_solution().is_some() {
            return Ok(GridClass::Constant);
        }
        // A hand-built solver in the plan is an a-priori log* upper bound
        // (Theorems 4 and 15), independent of the synthesis budget.
        let certified_log_star = self.plan.iter().any(|s| {
            s.capabilities().complexity == Complexity::LogStar
                && s.name() != registry::SYNTHESIS_SOLVER_NAME
        });
        if certified_log_star {
            return Ok(GridClass::LogStar);
        }
        if self.spec.grid_problem().is_none() {
            return Ok(GridClass::Global);
        }
        match self
            .registry
            .memoised_synthesis(&self.spec, self.opts.max_synthesis_k)
        {
            Some(_) => Ok(GridClass::LogStar),
            None => Ok(GridClass::Global),
        }
    }

    /// The opt-in round-ledger cross-validation (see
    /// [`EngineBuilder::debug_validation`]): runs Cole–Vishkin as a real
    /// message-passing protocol on a cycle of the instance's side length
    /// and checks the batched ledger invariant, recording both round
    /// counts in the report.
    fn cross_validate_rounds(
        &self,
        inst: &Instance,
        report: &mut SolveReport,
    ) -> Result<(), SolveError> {
        let side = inst.min_side();
        if inst.node_count() > DEBUG_VALIDATION_MAX_NODES || side < 3 || inst.ids().is_empty() {
            report
                .details
                .push(("debug_validation".to_string(), "skipped".to_string()));
            return Ok(());
        }
        let cycle = CycleGraph::new(side);
        let ids = &inst.ids()[..side];
        let batched = lcl_symmetry::cv3_cycle(&cycle, ids).rounds.total();
        let run = Simulator::new(64)
            .run(&cycle, ids, &CvProtocol)
            .map_err(|e| SolveError::ValidationFailed {
                solver: "cv-protocol-cross-check".to_string(),
                violation: format!("protocol did not halt: {e}"),
            })?;
        for v in 0..side {
            if run.outputs[v] >= 3 || run.outputs[v] == run.outputs[cycle.succ(v)] {
                return Err(SolveError::ValidationFailed {
                    solver: "cv-protocol-cross-check".to_string(),
                    violation: format!("protocol output is not a proper 3-colouring at node {v}"),
                });
            }
        }
        // The invariant proven in lcl_symmetry::protocol_validation: the
        // batched ledger may undercut the fixed synchronous schedule by
        // the adaptively skipped iterations, never overcharge it, and the
        // schedule adds at most the identifier exchange + halting rounds.
        if batched > run.rounds || run.rounds > batched + 5 {
            return Err(SolveError::ValidationFailed {
                solver: "cv-protocol-cross-check".to_string(),
                violation: format!(
                    "round ledger drifted from the synchronous protocol: \
                     ledger {batched}, protocol {}",
                    run.rounds
                ),
            });
        }
        report
            .details
            .push(("debug_cv_ledger_rounds".to_string(), batched.to_string()));
        report.details.push((
            "debug_cv_protocol_rounds".to_string(),
            run.rounds.to_string(),
        ));
        report
            .details
            .push(("debug_validation".to_string(), "ok".to_string()));
        Ok(())
    }
}

/// Encodes a pseudoforest as per-node out-pointer labels (0 = none,
/// 1 = north, 2 = east, 3 = south, 4 = west).
pub(crate) fn encode_forest(grid: &BoundaryGrid, forest: &PseudoForest) -> Vec<Label> {
    let m = grid.side();
    let mut labels = vec![0 as Label; m * m];
    for &(u, v) in &forest.arcs {
        let (ux, uy) = (u % m, u / m);
        let (vx, vy) = (v % m, v / m);
        labels[u] = match (vx as i64 - ux as i64, vy as i64 - uy as i64) {
            (0, 1) => 1,
            (1, 0) => 2,
            (0, -1) => 3,
            (-1, 0) => 4,
            _ => unreachable!("checked arcs are grid edges"),
        };
    }
    labels
}

/// Decodes out-pointer labels back to a [`PseudoForest`] (the inverse of
/// the encoding used by the registered boundary-paths solver), for
/// re-validation with [`lcl_algorithms::corner::check`].
pub fn decode_forest(grid: &BoundaryGrid, labels: &[Label]) -> PseudoForest {
    let m = grid.side();
    let mut arcs = Vec::new();
    for (u, &l) in labels.iter().enumerate() {
        let (x, y) = ((u % m) as i64, (u / m) as i64);
        let (dx, dy) = match l {
            0 => continue,
            1 => (0, 1),
            2 => (1, 0),
            3 => (0, -1),
            4 => (-1, 0),
            _ => continue,
        };
        let (vx, vy) = (x + dx, y + dy);
        if vx < 0 || vy < 0 || vx >= m as i64 || vy >= m as i64 {
            continue;
        }
        arcs.push((u, (vy as usize) * m + vx as usize));
    }
    PseudoForest { arcs }
}
