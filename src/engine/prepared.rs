//! The prepared-plan handle: one problem, resolved once, solved many
//! times.
//!
//! [`Engine::prepare`](crate::engine::Engine::prepare) walks the registry
//! tiers for a [`ProblemSpec`] exactly once and freezes the outcome — the
//! ordered solver plan, the canonical cache key, and the engine's
//! validation policy — into a [`PreparedProblem`]. The handle is
//! immutable, `Send + Sync`, and cheap to clone behind its `Arc`, so a
//! server resolves each problem at startup (or on first sight) and then
//! hands the same handle to every request thread; the classification
//! verdict memoises inside the handle on first use, sharing the
//! registry's synthesis cache with the solve path.

use super::chaos::ChaosState;
use super::health::Health;
use super::registry::{self, PlanOptions, Registry};
use super::spec::{self, ProblemSpec, Topology};
use super::{
    budget_error, Complexity, Instance, Labelling, Solve, SolveError, SolveReport,
    DEBUG_VALIDATION_MAX_NODES,
};
use lcl_core::classify::GridClass;
use lcl_core::existence;
use lcl_grid::CycleGraph;
use lcl_local::Simulator;
use lcl_sat::Budget;
use lcl_symmetry::protocol_validation::CvProtocol;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Appends a zero-cost skip entry (capability/shape mismatch or an open
/// breaker) to a solve's cost ledger.
fn push_skip(cost: &mut lcl_trace::Cost, tier: &str, outcome: lcl_trace::TierOutcome) {
    cost.tiers.push(lcl_trace::TierAttempt {
        tier: tier.to_string(),
        outcome,
        wall_us: 0,
        solver: lcl_trace::SolverCost::default(),
    });
}

/// Appends a dispatched tier attempt to a solve's cost ledger, draining
/// the thread's pending solver work so SAT effort is billed to the tier
/// that caused it, and stamping the tier span's outcome counter.
fn push_attempt(
    cost: &mut lcl_trace::Cost,
    span: &mut lcl_trace::SpanGuard,
    tier: &str,
    outcome: lcl_trace::TierOutcome,
    started: Instant,
) {
    let solver = lcl_trace::take_solver_cost();
    span.count(0, outcome.code());
    cost.tiers.push(lcl_trace::TierAttempt {
        tier: tier.to_string(),
        outcome,
        wall_us: started.elapsed().as_micros() as u64,
        solver,
    });
}

/// A problem whose solver plan has been resolved by
/// [`Engine::prepare`](crate::engine::Engine::prepare): the immutable,
/// shareable handle production callers solve through.
///
/// ```
/// use lcl_grids::engine::{Engine, Instance, ProblemSpec};
/// use lcl_grids::local::IdAssignment;
///
/// let engine = Engine::builder().max_synthesis_k(2).build();
/// let five = engine.prepare(&ProblemSpec::vertex_colouring(5)).unwrap();
/// assert!(!five.solver_names().is_empty());
/// let inst = Instance::square(16, &IdAssignment::Shuffled { seed: 1 });
/// assert!(five.solve(&inst).unwrap().report.validated);
/// ```
pub struct PreparedProblem {
    spec: ProblemSpec,
    cache_key: String,
    plan: Vec<Box<dyn Solve>>,
    registry: Arc<Registry>,
    opts: PlanOptions,
    rounds_budget: Option<u64>,
    validate: bool,
    debug_validation: bool,
    /// The engine's health ledger: circuit breakers consulted (and fed)
    /// by every dispatch through this plan.
    health: Arc<Health>,
    /// The engine's armed fault injector, if any.
    chaos: Option<Arc<ChaosState>>,
    /// The memoised `lcl-analyze` verdicts for the problem's block
    /// table: `L002` (statically unsolvable) and `L003` (constant)
    /// short-circuit the tier walk; serve renders the diagnostics.
    /// `None` for problems without a block normal form.
    analysis: Option<Arc<lcl_analyze::Analysis>>,
    /// The classification verdict, memoised on first `classify()` call
    /// (it may cost a synthesis attempt, shared with the solve path
    /// through the registry's synthesis cache).
    classification: OnceLock<Result<GridClass, SolveError>>,
    /// The census entry that seeded [`classification`], when the engine
    /// is armed with an [`super::AtlasTable`] and the problem's
    /// canonical form is in it: the classification above was pre-filled
    /// from the artifact (no synthesis will ever run for `classify`),
    /// and solve reports carry an `atlas` provenance detail.
    atlas_seed: Option<super::atlas::AtlasSeed>,
}

impl PreparedProblem {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        spec: ProblemSpec,
        cache_key: String,
        plan: Vec<Box<dyn Solve>>,
        registry: Arc<Registry>,
        opts: PlanOptions,
        rounds_budget: Option<u64>,
        validate: bool,
        debug_validation: bool,
        health: Arc<Health>,
        chaos: Option<Arc<ChaosState>>,
        analysis: Option<Arc<lcl_analyze::Analysis>>,
        atlas_seed: Option<super::atlas::AtlasSeed>,
    ) -> PreparedProblem {
        let classification = OnceLock::new();
        if let Some(seed) = &atlas_seed {
            // Census hit: the classification is already decided by the
            // checked-in artifact (soundness-gated by the engine in
            // `AtlasTable::seed_for`), so `classify` never reaches the
            // synthesiser for this problem.
            let _ = classification.set(Ok(seed.class.clone()));
        }
        PreparedProblem {
            spec,
            cache_key,
            plan,
            registry,
            opts,
            rounds_budget,
            validate,
            debug_validation,
            health,
            chaos,
            analysis,
            classification,
            atlas_seed,
        }
    }

    /// The problem this plan solves.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// The canonical cache key the plan is memoised (and batch-dedup
    /// namespaced) under — [`Registry::plan_cache_key`]: content-addressed
    /// for block problems, name-addressed otherwise, always carrying the
    /// synthesis budget.
    pub fn cache_key(&self) -> &str {
        &self.cache_key
    }

    /// The resolved solver plan, best first (across all topologies the
    /// problem has registered solvers on).
    pub fn solver_names(&self) -> Vec<&str> {
        self.plan.iter().map(|s| s.name()).collect()
    }

    /// The memoised [`lcl-analyze`](lcl_analyze) report for the
    /// problem's block table — spans included when the spec was compiled
    /// from `lcl-lang` source, span-free when the engine analysed a raw
    /// table at prepare time. `None` for problems without a block normal
    /// form (corner coordination, MIS powers).
    pub fn analysis(&self) -> Option<&lcl_analyze::Analysis> {
        self.analysis.as_deref()
    }

    /// The census entry this plan's classification was seeded from, when
    /// the engine is armed with an [`super::AtlasTable`] and the
    /// problem's canonical form is in the census: the census name and
    /// the class it pinned. `None` on engines without an atlas or for
    /// problems outside the census frontier.
    pub fn atlas_seed(&self) -> Option<&super::atlas::AtlasSeed> {
        self.atlas_seed.as_ref()
    }

    /// Solves one instance on any supported topology.
    ///
    /// 2-dimensional `TorusD` instances are lowered to their canonical
    /// `Torus2` form first, then the plan is walked: solvers whose
    /// [`super::Capabilities`] reject the instance's topology or size are
    /// skipped, typed per-solver failures fall through to the next
    /// solver, and successful labellings are re-validated with the
    /// topology-native independent checker before being returned. A
    /// `(problem, topology)` pair no registered solver covers comes back
    /// as [`SolveError::UnsupportedTopology`].
    pub fn solve(&self, inst: &Instance) -> Result<Labelling, SolveError> {
        self.solve_with(inst, &Budget::unlimited())
    }

    /// [`PreparedProblem::solve`] under a cooperative [`Budget`]
    /// (deadline, step quota, cancellation token), checked at hot-loop
    /// granularity inside the SAT-backed tiers.
    ///
    /// Degradation contract:
    ///
    /// * A tier whose budget trips is recorded (first trip wins the
    ///   attribution) and the walk **continues** to the next tier — the
    ///   closed-form constructions complete in microseconds, so a solve
    ///   that times out in synthesis can still be answered exactly. A
    ///   success after a trip carries `fallback_from` /
    ///   `fallback_elapsed` details in its [`SolveReport`] and bumps the
    ///   tier's fallback counter.
    /// * If no tier succeeds, the first trip is returned as
    ///   [`SolveError::DeadlineExceeded`] (taking priority over generic
    ///   fall-through errors).
    /// * [`SolveError::Cancelled`] aborts the walk immediately — a
    ///   caller that hung up wants no fallback.
    /// * Per-solver circuit breakers are consulted before each dispatch:
    ///   a tier tripped open by repeated infrastructure failures is
    ///   skipped until its cooldown elapses (see [`super::Health`]).
    ///
    /// In every outcome the plan, the engine, and the shared caches stay
    /// fully reusable: a budget trip never poisons a cache cell or
    /// wedges a worker.
    pub fn solve_with(&self, inst: &Instance, budget: &Budget) -> Result<Labelling, SolveError> {
        // Trace-and-ledger wrapper around the walk: one `Solve` span
        // (child tier spans record inside `solve_walk`), and a `Cost`
        // ledger of every tier attempt attached to the returned report.
        // The ledger is built whether or not tracing is enabled — it is
        // a handful of µs-stamped pushes per solve.
        let started = Instant::now();
        let mut span = lcl_trace::span(lcl_trace::SpanKind::Solve, "solve");
        let mut cost = lcl_trace::Cost::default();
        // Drain solver work left pending on this thread by earlier
        // operations (e.g. a classify), so the first tier attempt is
        // not billed for it.
        let _ = lcl_trace::take_solver_cost();
        let mut result = self.solve_walk(inst, budget, &mut cost);
        cost.total_us = started.elapsed().as_micros() as u64;
        span.count(0, cost.tiers.len() as u64);
        if let Ok(labelling) = &mut result {
            labelling.report.cost = cost;
        }
        result
    }

    /// The tier walk behind [`PreparedProblem::solve_with`], appending
    /// one [`lcl_trace::TierAttempt`] per tier it skips or dispatches.
    fn solve_walk(
        &self,
        inst: &Instance,
        budget: &Budget,
        cost: &mut lcl_trace::Cost,
    ) -> Result<Labelling, SolveError> {
        budget
            .check()
            .map_err(|e| budget_error("pre-dispatch", budget, e))?;
        let lowered = inst.lower_d2();
        let inst = lowered.as_ref().unwrap_or(inst);
        let topology = inst.topology();
        if !self.spec.supports(topology) {
            return Err(SolveError::UnsupportedTopology {
                problem: self.spec.name().to_string(),
                topology: topology.to_string(),
                reason: format!(
                    "{} has no semantics on a {topology}; its home is the {}",
                    self.spec.name(),
                    self.spec.home_topology()
                ),
            });
        }
        // L002 short-circuit: a statically-unsolvable verdict from the
        // prepare-time analysis — the arc-consistency closure emptied
        // the allowed-block set, certificate in `analysis()` — is the
        // exact verdict the SAT tier would reach, returned here with
        // zero solver invocations. 2-d tori only: the certificate
        // argument lives in the 2×2 block semantics.
        if topology == Topology::Torus2
            && self
                .analysis
                .as_ref()
                .is_some_and(|a| a.unsolvable().is_some())
        {
            return Err(SolveError::Unsolvable {
                problem: self.spec.name().to_string(),
                dims: inst.dims(),
            });
        }
        let side = inst.min_side();
        let mut topology_covered = false;
        let mut cheapest_over_budget: Option<u64> = None;
        let mut smallest_supported: Option<usize> = None;
        let mut fallthrough: Option<SolveError> = None;
        let mut timed_out: Option<(String, Duration)> = None;
        for solver in &self.plan {
            let caps = solver.capabilities();
            if !caps.topology.accepts(topology) {
                continue;
            }
            topology_covered = true;
            let name = solver.name();
            if caps.square_only && !inst.is_square() {
                push_skip(cost, name, lcl_trace::TierOutcome::Skipped);
                continue;
            }
            if side < caps.min_side {
                smallest_supported =
                    Some(smallest_supported.map_or(caps.min_side, |m: usize| m.min(caps.min_side)));
                push_skip(cost, name, lcl_trace::TierOutcome::Skipped);
                continue;
            }
            if !self.health.allow(name) {
                self.health.record_breaker_skip(name);
                push_skip(cost, name, lcl_trace::TierOutcome::BreakerSkip);
                fallthrough.get_or_insert(SolveError::SolverFailed {
                    solver: name.to_string(),
                    detail: "circuit breaker open: tier is cooling down after repeated failures"
                        .to_string(),
                });
                continue;
            }
            let attempt_started = Instant::now();
            let mut tier_span = lcl_trace::span(lcl_trace::SpanKind::Tier, name);
            if let Some(chaos) = &self.chaos {
                if let Some(delay) = chaos.latency() {
                    std::thread::sleep(delay);
                }
                // May panic (deterministically): the batch, stream, and
                // serve paths contain it via catch_unwind, which is the
                // point.
                chaos.maybe_panic(name);
            }
            match solver.solve_budgeted(inst, budget) {
                Ok(mut labelling) => {
                    if self.validate {
                        let valid = {
                            let _vspan =
                                lcl_trace::span(lcl_trace::SpanKind::Validation, "validate");
                            self.spec.check_instance(inst, &labelling.labels)
                        };
                        if let Err(violation) = valid {
                            self.health.record_failure(name);
                            push_attempt(
                                cost,
                                &mut tier_span,
                                name,
                                lcl_trace::TierOutcome::Failed,
                                attempt_started,
                            );
                            fallthrough.get_or_insert(SolveError::ValidationFailed {
                                solver: name.to_string(),
                                violation,
                            });
                            continue;
                        }
                        labelling.report.validated = true;
                    }
                    if self.debug_validation {
                        self.cross_validate_rounds(inst, &mut labelling.report)?;
                    }
                    let needed = labelling.report.rounds.total();
                    if let Some(budget) = self.rounds_budget {
                        if needed > budget {
                            cheapest_over_budget =
                                Some(cheapest_over_budget.map_or(needed, |c: u64| c.min(needed)));
                            push_attempt(
                                cost,
                                &mut tier_span,
                                name,
                                lcl_trace::TierOutcome::Skipped,
                                attempt_started,
                            );
                            continue;
                        }
                    }
                    self.health.record_success(name);
                    push_attempt(
                        cost,
                        &mut tier_span,
                        name,
                        lcl_trace::TierOutcome::Solved,
                        attempt_started,
                    );
                    if let Some((tier, elapsed)) = timed_out {
                        self.health.record_fallback(&tier);
                        labelling.report = labelling
                            .report
                            .with_detail("fallback_from", tier)
                            .with_detail("fallback_elapsed_ms", elapsed.as_millis());
                    }
                    // L003: record that the O(1) tier was predicted by
                    // the static analysis, not discovered by the walk.
                    if name == "constant"
                        && self
                            .analysis
                            .as_ref()
                            .is_some_and(|a| a.constant_label().is_some())
                    {
                        labelling.report = labelling.report.with_detail("analysis", "L003");
                    }
                    // Census provenance: this plan's classification came
                    // from the atlas artifact, not a tier-walk discovery.
                    if let Some(seed) = &self.atlas_seed {
                        labelling.report = labelling.report.with_detail("atlas", &seed.name);
                    }
                    return Ok(labelling);
                }
                // Unsatisfiability is exact: no other solver can succeed.
                Err(e @ SolveError::Unsolvable { .. }) => {
                    self.health.record_success(name);
                    push_attempt(
                        cost,
                        &mut tier_span,
                        name,
                        lcl_trace::TierOutcome::Unsolvable,
                        attempt_started,
                    );
                    return Err(e);
                }
                // Cancellation aborts: the caller hung up.
                Err(SolveError::Cancelled) => {
                    push_attempt(
                        cost,
                        &mut tier_span,
                        name,
                        lcl_trace::TierOutcome::Cancelled,
                        attempt_started,
                    );
                    return Err(SolveError::Cancelled);
                }
                // A tripped budget degrades: later (cheaper) tiers still
                // get their chance; the first trip owns the attribution.
                Err(SolveError::DeadlineExceeded { tier, elapsed }) => {
                    self.health.record_timeout(name);
                    self.health.record_failure(name);
                    push_attempt(
                        cost,
                        &mut tier_span,
                        name,
                        lcl_trace::TierOutcome::Timeout,
                        attempt_started,
                    );
                    timed_out.get_or_insert((tier, elapsed));
                }
                Err(SolveError::TorusTooSmall { min_side, .. }) => {
                    self.health.record_success(name);
                    push_attempt(
                        cost,
                        &mut tier_span,
                        name,
                        lcl_trace::TierOutcome::Skipped,
                        attempt_started,
                    );
                    smallest_supported =
                        Some(smallest_supported.map_or(min_side, |m: usize| m.min(min_side)));
                }
                Err(e) => {
                    if matches!(
                        e,
                        SolveError::SolverFailed { .. } | SolveError::Panicked { .. }
                    ) {
                        self.health.record_failure(name);
                    } else {
                        // Domain verdicts (e.g. SynthesisFailed) prove the
                        // tier's machinery works; crucially they also close
                        // a half-open probe instead of wedging it.
                        self.health.record_success(name);
                    }
                    push_attempt(
                        cost,
                        &mut tier_span,
                        name,
                        lcl_trace::TierOutcome::Failed,
                        attempt_started,
                    );
                    fallthrough.get_or_insert(e);
                }
            }
        }
        if !topology_covered {
            return Err(SolveError::UnsupportedTopology {
                problem: self.spec.name().to_string(),
                topology: topology.to_string(),
                reason: "no registered solver covers this (problem, topology) pair".to_string(),
            });
        }
        // A budget trip outranks the generic fall-through: it is the
        // actionable outcome (retry with a roomier budget).
        if let Some((tier, elapsed)) = timed_out {
            return Err(SolveError::DeadlineExceeded { tier, elapsed });
        }
        if let (Some(needed), Some(budget)) = (cheapest_over_budget, self.rounds_budget) {
            return Err(SolveError::RoundBudgetExceeded { budget, needed });
        }
        if let Some(e) = fallthrough {
            return Err(e);
        }
        if let Some(min_side) = smallest_supported {
            return Err(SolveError::TorusTooSmall {
                problem: self.spec.name().to_string(),
                min_side,
                side,
            });
        }
        Err(SolveError::NoSolver {
            problem: self.spec.name().to_string(),
        })
    }

    /// Decides whether the problem has *any* valid labelling on the
    /// instance's topology and dimensions (independent of round budgets
    /// and identifier assignments).
    ///
    /// On 2-d tori (and lowered `d = 2` instances) this is the exact SAT
    /// existence question; on higher-dimensional tori it is answered by
    /// the paper's counting arguments where those apply (Theorem 21 for
    /// edge `2d`-colouring, §10 for larger palettes, the Cartesian-product
    /// chromatic bound for vertex colouring); unsupported pairs come back
    /// as [`SolveError::UnsupportedTopology`].
    pub fn solvable(&self, inst: &Instance) -> Result<bool, SolveError> {
        let lowered = inst.lower_d2();
        let inst = lowered.as_ref().unwrap_or(inst);
        let topology = inst.topology();
        let unsupported = |reason: String| SolveError::UnsupportedTopology {
            problem: self.spec.name().to_string(),
            topology: topology.to_string(),
            reason,
        };
        if !self.spec.supports(topology) {
            return Err(unsupported(format!(
                "{} has no semantics on a {topology}",
                self.spec.name()
            )));
        }
        if self.spec.mis_power_params().is_some() {
            // The greedy sweep always produces a maximal independent set.
            return Ok(true);
        }
        match inst {
            Instance::Boundary(_) => Ok(true), // the boundary-paths witness
            Instance::Torus2(gi) => {
                let problem = self
                    .spec
                    .grid_problem()
                    .ok_or_else(|| unsupported("not a block problem".to_string()))?;
                Ok(existence::solvable(problem, &gi.torus()))
            }
            Instance::TorusD(di) => {
                use lcl_core::GridProblem;
                let n = di.side();
                let d = di.dim();
                if n == 1 {
                    // A side-1 torus has no edges: everything labels.
                    return Ok(true);
                }
                match self.spec.grid_problem() {
                    Some(GridProblem::EdgeColouring { k }) => {
                        let k = usize::from(*k);
                        if k < 2 * d {
                            Ok(false) // fewer colours than the degree
                        } else if k == 2 * d {
                            Ok(n % 2 == 0) // Theorem 21, exactly
                        } else {
                            Ok(true) // §10: 2d+1 colours always suffice
                        }
                    }
                    Some(GridProblem::VertexColouring { k }) => {
                        // χ of a Cartesian product of cycles is
                        // max over the factors: 2 for even n, 3 for odd.
                        let chi = if n % 2 == 0 { 2 } else { 3 };
                        Ok(usize::from(*k) >= chi)
                    }
                    Some(p) => match spec::ddim_semantics(p, d) {
                        Some(spec::DdimSemantics::IndependentSet) => Ok(true),
                        Some(spec::DdimSemantics::Pairwise(pairs)) => {
                            // The d-dimensional SAT existence encoder:
                            // exact verdicts for axis-symmetric pairwise
                            // problems (compiled lcl-lang definitions
                            // included) beyond the tabulated formulas.
                            Ok(
                                existence::solve_pairwise_d(di.torus(), p.alphabet(), &pairs)
                                    .is_some(),
                            )
                        }
                        _ => Err(unsupported(
                            "existence is not tabulated for this problem in d ≥ 3".to_string(),
                        )),
                    },
                    None => Err(unsupported("not a block problem".to_string())),
                }
            }
        }
    }

    /// The one-sided classification adapter (§7): `Constant` if a
    /// constant labelling works, `LogStar` with certainty if a certified
    /// hand-built `O(log* n)` solver is registered or synthesis succeeds
    /// within the plan's `k` budget (memoised), `Global` otherwise —
    /// which, by Theorem 3, no procedure can sharpen. The verdict is
    /// computed once per prepared problem and cached in the handle.
    pub fn classify(&self) -> Result<GridClass, SolveError> {
        self.classification
            .get_or_init(|| self.classify_uncached(&Budget::unlimited()))
            .clone()
    }

    /// [`PreparedProblem::classify`] under a cooperative [`Budget`]. A
    /// budget trip mid-synthesis returns the typed error **without**
    /// filling the classification memo (or the registry's synthesis
    /// cache): an interrupted search is not a `Global` verdict, and the
    /// next call — with a roomier budget — recomputes from intact state.
    pub fn classify_with(&self, budget: &Budget) -> Result<GridClass, SolveError> {
        if let Some(verdict) = self.classification.get() {
            return verdict.clone();
        }
        let verdict = self.classify_uncached(budget);
        if matches!(
            verdict,
            Err(SolveError::DeadlineExceeded { .. }) | Err(SolveError::Cancelled)
        ) {
            return verdict;
        }
        self.classification.get_or_init(|| verdict).clone()
    }

    fn classify_uncached(&self, budget: &Budget) -> Result<GridClass, SolveError> {
        if self.spec.home_topology() == Topology::Boundary {
            return Err(SolveError::UnsupportedTopology {
                problem: self.spec.name().to_string(),
                topology: Topology::Boundary.to_string(),
                reason: "classification covers the torus landscape (Theorem 1)".to_string(),
            });
        }
        if self.spec.constant_solution().is_some() {
            return Ok(GridClass::Constant);
        }
        // A hand-built solver in the plan is an a-priori log* upper bound
        // (Theorems 4 and 15), independent of the synthesis budget.
        let certified_log_star = self.plan.iter().any(|s| {
            s.capabilities().complexity == Complexity::LogStar
                && s.name() != registry::SYNTHESIS_SOLVER_NAME
        });
        if certified_log_star {
            return Ok(GridClass::LogStar);
        }
        if self.spec.grid_problem().is_none() {
            return Ok(GridClass::Global);
        }
        // L002: synthesis tiles a valid labelling, which a
        // statically-unsolvable problem has none of — skip the search.
        if self
            .analysis
            .as_ref()
            .is_some_and(|a| a.unsolvable().is_some())
        {
            return Ok(GridClass::Global);
        }
        match self
            .registry
            .memoised_synthesis_budgeted(&self.spec, self.opts.max_synthesis_k, budget)
            .map_err(|e| budget_error(registry::SYNTHESIS_SOLVER_NAME, budget, e))?
        {
            Some(_) => Ok(GridClass::LogStar),
            None => Ok(GridClass::Global),
        }
    }

    /// The opt-in round-ledger cross-validation (see
    /// [`super::EngineBuilder::debug_validation`]): runs Cole–Vishkin as a
    /// real message-passing protocol on a cycle of the instance's side
    /// length and checks the batched ledger invariant, recording both
    /// round counts in the report.
    fn cross_validate_rounds(
        &self,
        inst: &Instance,
        report: &mut SolveReport,
    ) -> Result<(), SolveError> {
        let side = inst.min_side();
        if inst.node_count() > DEBUG_VALIDATION_MAX_NODES || side < 3 || inst.ids().is_empty() {
            report
                .details
                .push(("debug_validation".to_string(), "skipped".to_string()));
            return Ok(());
        }
        let cycle = CycleGraph::new(side);
        let ids = &inst.ids()[..side];
        let batched = lcl_symmetry::cv3_cycle(&cycle, ids).rounds.total();
        let run = Simulator::new(64)
            .run(&cycle, ids, &CvProtocol)
            .map_err(|e| SolveError::ValidationFailed {
                solver: "cv-protocol-cross-check".to_string(),
                violation: format!("protocol did not halt: {e}"),
            })?;
        for v in 0..side {
            if run.outputs[v] >= 3 || run.outputs[v] == run.outputs[cycle.succ(v)] {
                return Err(SolveError::ValidationFailed {
                    solver: "cv-protocol-cross-check".to_string(),
                    violation: format!("protocol output is not a proper 3-colouring at node {v}"),
                });
            }
        }
        // The invariant proven in lcl_symmetry::protocol_validation: the
        // batched ledger may undercut the fixed synchronous schedule by
        // the adaptively skipped iterations, never overcharge it, and the
        // schedule adds at most the identifier exchange + halting rounds.
        if batched > run.rounds || run.rounds > batched + 5 {
            return Err(SolveError::ValidationFailed {
                solver: "cv-protocol-cross-check".to_string(),
                violation: format!(
                    "round ledger drifted from the synchronous protocol: \
                     ledger {batched}, protocol {}",
                    run.rounds
                ),
            });
        }
        report
            .details
            .push(("debug_cv_ledger_rounds".to_string(), batched.to_string()));
        report.details.push((
            "debug_cv_protocol_rounds".to_string(),
            run.rounds.to_string(),
        ));
        report
            .details
            .push(("debug_validation".to_string(), "ok".to_string()));
        Ok(())
    }
}

impl std::fmt::Debug for PreparedProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedProblem")
            .field("problem", &self.spec.name())
            .field("cache_key", &self.cache_key)
            .field("solvers", &self.solver_names())
            .finish()
    }
}
