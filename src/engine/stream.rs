//! The streaming solve path: million-job workloads in `O(threads)`
//! memory.
//!
//! [`Engine::solve_stream`] takes an *iterator* of mixed-problem
//! [`Job`]s and returns a [`SolveStream`] — itself an iterator of
//! [`JobOutcome`]s. Jobs are pulled from the input lazily, one per idle
//! worker, and finished results flow back through a bounded channel: when
//! the consumer stops draining, the channel fills, the workers block on
//! their sends, and no further jobs are pulled. The input is therefore
//! never materialised; at any moment at most
//! [`SolveStream::buffer_bound`] jobs (`2 × threads`: one in flight per
//! worker, one finished result buffered per worker) have been pulled but
//! not yet yielded. `tests/prepare.rs` pins the bound with a counting
//! iterator over 10 000 jobs.
//!
//! Streaming trades the batch path's *unbounded* in-batch dedup for the
//! memory bound — remembering every previously seen job is exactly what
//! an unbounded workload cannot afford. The opt-in compromise is the
//! *bounded* dedup window
//! ([`EngineBuilder::stream_dedup_window`](crate::engine::EngineBuilder::stream_dedup_window)):
//! an LRU over the last `n` distinct plan-key × instance-key groups, so
//! repeat-heavy service traffic recovers most of the slice path's dedup
//! savings in `O(window × nodes)` extra memory. Window answers are
//! flagged per outcome ([`JobOutcome::deduped`]) and counted per stream
//! ([`SolveStream::dedup_hits`]) and per engine
//! ([`Engine::stream_dedup_hits`](crate::engine::Engine::stream_dedup_hits)).
//! The shared caches still amortise across the stream either way:
//! synthesis tables and prepared plans are resolved once per problem, not
//! per job. Results arrive in *completion* order, tagged with the job's
//! input index; a consumer that needs input order should use the slice
//! entry points, which preserve it for free.

use super::batch::{self, panic_detail, Job};
use super::chaos::{ChaosState, FaultPoint};
use super::health::Health;
use super::registry::fnv1a64;
use super::{Engine, Instance, Labelling, PreparedProblem, SolveError};
use lcl_sat::Budget;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// One finished stream job: the input position it came from, the problem
/// it belongs to, and the solve result.
#[derive(Debug)]
pub struct JobOutcome {
    /// Zero-based position of the job in the input iterator.
    pub index: u64,
    /// The prepared problem's display name.
    pub problem: String,
    /// The solve result.
    pub result: Result<Labelling, SolveError>,
    /// True iff the result was answered from the bounded stream dedup
    /// window (see
    /// [`EngineBuilder::stream_dedup_window`](crate::engine::EngineBuilder::stream_dedup_window))
    /// instead of a fresh solve. Solving is deterministic, so a deduped
    /// result is byte-identical to the fresh one.
    pub deduped: bool,
}

/// The shared pull-end of a stream: the job iterator plus the running
/// input index, taken by one worker at a time. `jobs` becomes `None`
/// once the iterator is exhausted — or once it panicked, so that every
/// worker (not just the observing one) stops pulling from it.
struct JobSource<I> {
    jobs: Option<I>,
    next_index: u64,
}

/// One remembered job group in the bounded stream dedup window.
struct WindowEntry {
    fingerprint: u64,
    prepared: Arc<PreparedProblem>,
    instance: Instance,
    result: Result<Labelling, SolveError>,
    /// FNV checksum of the labels at insertion time. Every lookup
    /// re-verifies it, so a corrupted entry — bit rot, a buggy in-place
    /// mutation, or an injected [`FaultPoint::DedupPoison`] — is detected
    /// and transparently re-solved instead of served.
    checksum: u64,
    last_used: u64,
}

/// The integrity checksum of a cached result (errors carry no labels and
/// checksum to the empty hash).
fn labels_checksum(result: &Result<Labelling, SolveError>) -> u64 {
    match result {
        Ok(labelling) => fnv1a64(labelling.labels.iter().flat_map(|l| l.to_le_bytes())),
        Err(_) => fnv1a64(std::iter::empty::<u8>()),
    }
}

/// The bounded LRU over plan-key × instance-key groups behind
/// [`EngineBuilder::stream_dedup_window`](crate::engine::EngineBuilder::stream_dedup_window).
/// At most `cap` entries; a linear scan per lookup is fine at window
/// sizes (the fingerprint comparison rejects non-matches in one branch,
/// and candidates are verified against the actual job like the batch
/// path, so a fingerprint collision costs a comparison, never a wrong
/// share).
struct DedupWindow {
    cap: usize,
    clock: u64,
    entries: Vec<WindowEntry>,
}

impl DedupWindow {
    fn new(cap: usize) -> DedupWindow {
        DedupWindow {
            cap,
            clock: 0,
            entries: Vec::with_capacity(cap.min(1024)),
        }
    }

    /// The window answer for a job, bumping its LRU stamp on a hit.
    /// Matching follows the batch dedup identity exactly: same prepared
    /// *handle* (pointer identity — differently-configured engines'
    /// key-equal handles never alias) and interchangeable instance.
    ///
    /// Every hit is integrity-checked against the entry's insertion-time
    /// checksum: a poisoned entry is evicted, counted in
    /// [`Health::dedup_poison_recoveries`], and reported as a miss, so
    /// the job is transparently re-solved — corruption costs time, never
    /// a wrong answer.
    fn lookup(
        &mut self,
        fingerprint: u64,
        prepared: &Arc<PreparedProblem>,
        inst: &Instance,
        health: &Health,
    ) -> Option<Result<Labelling, SolveError>> {
        self.clock += 1;
        let clock = self.clock;
        let pos = self.entries.iter().position(|e| {
            e.fingerprint == fingerprint
                && Arc::ptr_eq(&e.prepared, prepared)
                && e.instance.same_input(inst)
        })?;
        if labels_checksum(&self.entries[pos].result) != self.entries[pos].checksum {
            self.entries.swap_remove(pos);
            health.record_dedup_poison_recovery();
            return None;
        }
        let e = &mut self.entries[pos];
        e.last_used = clock;
        Some(e.result.clone())
    }

    /// Remembers a freshly solved job, evicting the least-recently-used
    /// entry when the window is full. A concurrent worker may have
    /// inserted the same group while this one was solving; the duplicate
    /// is harmless (identical deterministic results) and ages out.
    ///
    /// With chaos armed, [`FaultPoint::DedupPoison`] may corrupt the
    /// entry *after* its checksum is taken — the injected fault the
    /// lookup-time integrity check must catch.
    fn insert(&mut self, mut entry: WindowEntry, chaos: Option<&ChaosState>) {
        if self.cap == 0 {
            return;
        }
        entry.checksum = labels_checksum(&entry.result);
        if let Some(chaos) = chaos {
            if chaos.should(FaultPoint::DedupPoison) {
                if let Ok(labelling) = &mut entry.result {
                    if let Some(first) = labelling.labels.first_mut() {
                        *first ^= 1;
                    }
                }
            }
        }
        if self.entries.len() >= self.cap {
            if let Some(oldest) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(oldest);
            }
        }
        self.clock += 1;
        let clock = self.clock;
        self.entries.push(WindowEntry {
            last_used: clock,
            ..entry
        });
    }
}

/// The `problem` tag of the outcome reporting a panicking jobs iterator
/// (there is no prepared problem to name — the input itself failed).
pub const JOBS_ITERATOR_PANICKED: &str = "<jobs-iterator>";

/// A running streamed solve: iterate it to drain results (in completion
/// order). Dropping the stream early is safe — workers observe the
/// disconnected channel and wind down; the drop joins them.
pub struct SolveStream {
    rx: Option<mpsc::Receiver<JobOutcome>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    dedup_hits: Arc<AtomicU64>,
}

impl SolveStream {
    /// Worker threads solving this stream.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The guaranteed bound on jobs pulled from the input but not yet
    /// yielded to the consumer: one in-flight job per worker plus one
    /// buffered result slot per worker (`2 × threads`). This is what
    /// keeps an arbitrarily long input in `O(threads)` memory (plus the
    /// opt-in dedup window's `O(window × nodes)`, when configured).
    pub fn buffer_bound(&self) -> usize {
        2 * self.threads
    }

    /// Jobs of *this* stream answered from the bounded dedup window so
    /// far (0 unless
    /// [`EngineBuilder::stream_dedup_window`](crate::engine::EngineBuilder::stream_dedup_window)
    /// is configured). Iterate the stream via `&mut` to read the counter
    /// mid-drain or after exhaustion.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }
}

impl Iterator for SolveStream {
    type Item = JobOutcome;

    fn next(&mut self) -> Option<JobOutcome> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl Drop for SolveStream {
    fn drop(&mut self) {
        // Disconnect first so blocked workers fail their sends instead of
        // deadlocking against a join, then reap them.
        self.rx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Engine {
    /// Streams a (possibly unbounded, possibly mixed-problem) sequence of
    /// [`Job`]s through the worker pool, yielding [`JobOutcome`]s in
    /// completion order through a bounded channel with backpressure.
    ///
    /// The input iterator is pulled lazily from the worker threads — one
    /// job per idle worker — so the jobs are never collected; see
    /// [`SolveStream::buffer_bound`] for the exact in-flight bound. A
    /// panicking solver terminates only the affected job (typed as
    /// [`SolveError::Panicked`]); a panicking jobs *iterator* ends the
    /// stream for every worker and is reported — never swallowed — as a
    /// final [`JobOutcome`] whose `problem` is
    /// [`JOBS_ITERATOR_PANICKED`] and whose result is the typed panic,
    /// so a consumer can always tell truncation from completion.
    ///
    /// ```
    /// use lcl_grids::engine::{Engine, Instance, Job, ProblemSpec};
    /// use lcl_grids::local::IdAssignment;
    ///
    /// let engine = Engine::builder().threads(2).build();
    /// let ind = engine.prepare(&ProblemSpec::independent_set()).unwrap();
    /// let jobs = (0..100u64).map(move |seed| {
    ///     Job::new(
    ///         ind.clone(),
    ///         Instance::square(4, &IdAssignment::Shuffled { seed }),
    ///     )
    /// });
    /// let mut seen = 0;
    /// for outcome in engine.solve_stream(jobs) {
    ///     assert!(outcome.result.is_ok());
    ///     seen += 1;
    /// }
    /// assert_eq!(seen, 100);
    /// ```
    pub fn solve_stream<I>(&self, jobs: I) -> SolveStream
    where
        I: IntoIterator<Item = Job>,
        I::IntoIter: Send + 'static,
    {
        self.solve_stream_with(jobs, &Budget::unlimited())
    }

    /// [`Engine::solve_stream`] under a joint cooperative [`Budget`]: the
    /// workers share the budget's clock and step counter, so a stream
    /// deadline bounds the whole drain — jobs dispatched after the trip
    /// fail fast with the typed error while the stream itself stays live
    /// and yields every outcome. A job carrying its own
    /// [`Job::with_budget`] override is governed by that budget instead
    /// — the per-problem-timeout shape mass pipelines (the `lcl-atlas`
    /// census) drive through this entry point.
    pub fn solve_stream_with<I>(&self, jobs: I, budget: &Budget) -> SolveStream
    where
        I: IntoIterator<Item = Job>,
        I::IntoIter: Send + 'static,
    {
        let budget = budget.clone();
        let health = Arc::clone(&self.health);
        let chaos = self.chaos.clone();
        let threads = self.worker_threads();
        let source = Arc::new(Mutex::new(JobSource {
            jobs: Some(jobs.into_iter()),
            next_index: 0u64,
        }));
        let window = match self.stream_dedup_window() {
            0 => None,
            cap => Some(Arc::new(Mutex::new(DedupWindow::new(cap)))),
        };
        let stream_hits = Arc::new(AtomicU64::new(0));
        let engine_hits = self.stream_dedup_hits_counter();
        // Capacity `threads`: with one in-flight job per worker this caps
        // pulled-but-unyielded jobs at 2 × threads, the documented bound.
        let (tx, rx) = mpsc::sync_channel::<JobOutcome>(threads);
        let workers = (0..threads)
            .map(|_| {
                let source = Arc::clone(&source);
                let window = window.clone();
                let stream_hits = Arc::clone(&stream_hits);
                let engine_hits = Arc::clone(&engine_hits);
                let budget = budget.clone();
                let health = Arc::clone(&health);
                let chaos = chaos.clone();
                let tx = tx.clone();
                std::thread::spawn(move || loop {
                    let (index, job) = {
                        let mut source = source.lock().unwrap_or_else(PoisonError::into_inner);
                        let Some(jobs) = source.jobs.as_mut() else {
                            break; // exhausted — or ended by a panic below
                        };
                        match catch_unwind(AssertUnwindSafe(|| jobs.next())) {
                            Ok(Some(job)) => {
                                let index = source.next_index;
                                source.next_index += 1;
                                (index, job)
                            }
                            Ok(None) => {
                                source.jobs = None;
                                break;
                            }
                            // A panicking jobs iterator ends the stream
                            // for every worker (its state is unusable)
                            // and is reported as a typed outcome so the
                            // consumer can tell truncation from
                            // completion.
                            Err(payload) => {
                                source.jobs = None;
                                let index = source.next_index;
                                drop(source);
                                let _ = tx.send(JobOutcome {
                                    index,
                                    problem: JOBS_ITERATOR_PANICKED.to_string(),
                                    result: Err(SolveError::Panicked {
                                        detail: panic_detail(payload),
                                    }),
                                    deduped: false,
                                });
                                break;
                            }
                        }
                    };
                    let (result, deduped) =
                        solve_windowed(&job, window.as_deref(), &health, chaos.as_deref(), &budget);
                    if deduped {
                        stream_hits.fetch_add(1, Ordering::Relaxed);
                        engine_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    let outcome = JobOutcome {
                        index,
                        problem: job.prepared.spec().name().to_string(),
                        result,
                        deduped,
                    };
                    // A dropped consumer disconnects the channel: stop
                    // pulling and wind down.
                    if tx.send(outcome).is_err() {
                        break;
                    }
                })
            })
            .collect();
        SolveStream {
            rx: Some(rx),
            workers,
            threads,
            dedup_hits: stream_hits,
        }
    }
}

/// Solves one stream job through the dedup window (when one is
/// configured): window hit → shared result, miss (including a poisoned
/// entry recovered by the checksum) → fresh solve that is then
/// remembered. Returns the result and whether it was a window hit.
fn solve_windowed(
    job: &Job,
    window: Option<&Mutex<DedupWindow>>,
    health: &Health,
    chaos: Option<&ChaosState>,
    budget: &Budget,
) -> (Result<Labelling, SolveError>, bool) {
    // A per-job budget replaces the stream budget for this job and opts
    // it out of the dedup window in both directions (no lookup, no
    // insert): budgets are consumable state, so budgeted jobs are never
    // interchangeable — see `Job::with_budget`.
    let budget = job.budget().unwrap_or(budget);
    let window = match window {
        Some(window) if job.budget().is_none() => window,
        _ => {
            return (
                batch::solve_caught(&job.prepared, &job.instance, budget),
                false,
            );
        }
    };
    let fingerprint = batch::job_fingerprint(&job.prepared, &job.instance);
    let hit = {
        let mut span = lcl_trace::span(lcl_trace::SpanKind::Dedup, "dedup-lookup");
        let hit = window
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lookup(fingerprint, &job.prepared, &job.instance, health);
        span.count(0, u64::from(hit.is_some()));
        hit
    };
    if let Some(hit) = hit {
        return (hit, true);
    }
    let result = batch::solve_caught(&job.prepared, &job.instance, budget);
    window
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(
            WindowEntry {
                fingerprint,
                prepared: Arc::clone(&job.prepared),
                instance: job.instance.clone(),
                result: result.clone(),
                checksum: 0,  // stamped by insert
                last_used: 0, // stamped by insert
            },
            chaos,
        );
    (result, false)
}
