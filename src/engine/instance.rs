//! The engine's topology-polymorphic instance currency.
//!
//! Every entry point of the [`Engine`](crate::engine::Engine) —
//! `solve`, `solve_batch`, `solvable` — takes an [`Instance`]: one enum
//! over the three input families the paper classifies. Registry solvers
//! declare which families they accept via
//! [`Capabilities`](crate::engine::Capabilities), and the engine matches
//! `(problem, topology)` pairs at dispatch time instead of hard-wiring
//! the 2-d torus.
//!
//! A 2-dimensional [`Instance::TorusD`] is *canonically equivalent* to the
//! corresponding [`Instance::Torus2`]: `TorusD::index` of `[x, y]` equals
//! `Torus2::index` of `(x, y)`, so the engine lowers `d = 2` instances to
//! the 2-d fast path before dispatch and the two spellings produce
//! byte-identical labellings (and share batch-dedup groups).

use super::spec::Topology;
use lcl_algorithms::corner::BoundaryGrid;
use lcl_grid::{CsrAdjacency, Graph, Torus2};
use lcl_local::{GridInstance, IdAssignment, TorusDInstance};
use std::fmt;

/// A problem instance on any topology the engine supports: the single
/// input currency of [`Engine::solve`](crate::engine::Engine::solve) and
/// [`Engine::solve_batch`](crate::engine::Engine::solve_batch).
///
/// # Example
///
/// ```
/// use lcl_grids::engine::{Instance, Topology};
/// use lcl_grids::local::IdAssignment;
///
/// let flat = Instance::square(8, &IdAssignment::Sequential);
/// assert_eq!(flat.topology(), Topology::Torus2);
/// let cube = Instance::torus_d(3, 4, &IdAssignment::Sequential);
/// assert_eq!(cube.topology(), Topology::TorusD { d: 3 });
/// assert_eq!(cube.node_count(), 64);
/// ```
#[derive(Clone, Debug)]
pub enum Instance {
    /// An oriented 2-dimensional torus with unique identifiers — the
    /// paper's main setting.
    Torus2(GridInstance),
    /// An oriented d-dimensional torus with unique identifiers (§8, §10,
    /// Theorem 21).
    TorusD(TorusDInstance),
    /// A non-toroidal `m × m` grid with boundary (Appendix A.3).
    Boundary(BoundaryGrid),
}

impl Instance {
    /// An `n × n` 2-d torus instance with the given identifier assignment.
    pub fn square(n: usize, ids: &IdAssignment) -> Instance {
        Instance::Torus2(GridInstance::new(n, ids))
    }

    /// A `d`-dimensional side-`n` torus instance with the given identifier
    /// assignment. `d = 2` is kept as a `TorusD` instance; the engine
    /// lowers it to the equivalent 2-d instance at dispatch time.
    pub fn torus_d(d: usize, n: usize, ids: &IdAssignment) -> Instance {
        Instance::TorusD(TorusDInstance::new(d, n, ids))
    }

    /// An `m × m` boundary-grid instance (corner coordination input).
    pub fn boundary(m: usize) -> Instance {
        Instance::Boundary(BoundaryGrid::new(m))
    }

    /// A 2-d torus instance with sequential identifiers — handy for
    /// topology-level queries like
    /// [`Engine::solvable`](crate::engine::Engine::solvable), where the
    /// identifier assignment is irrelevant. Note that the identifiers are
    /// materialised eagerly (`node_count()` of them); hoist the instance
    /// out of loops that only re-ask the same topology-level question.
    pub fn torus2(torus: Torus2) -> Instance {
        let ids = IdAssignment::Sequential.materialise(torus.node_count());
        Instance::Torus2(GridInstance::from_ids(torus, ids))
    }

    /// The topology this instance lives on.
    pub fn topology(&self) -> Topology {
        match self {
            Instance::Torus2(_) => Topology::Torus2,
            Instance::TorusD(inst) => Topology::TorusD { d: inst.dim() },
            Instance::Boundary(_) => Topology::Boundary,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match self {
            Instance::Torus2(inst) => inst.torus().node_count(),
            Instance::TorusD(inst) => inst.torus().node_count(),
            Instance::Boundary(grid) => grid.side() * grid.side(),
        }
    }

    /// The instance's side lengths, one per dimension.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            Instance::Torus2(inst) => vec![inst.torus().width(), inst.torus().height()],
            Instance::TorusD(inst) => vec![inst.side(); inst.dim()],
            Instance::Boundary(grid) => vec![grid.side(), grid.side()],
        }
    }

    /// The smallest side length (the quantity solver `min_side`
    /// capabilities are checked against).
    pub fn min_side(&self) -> usize {
        self.dims().into_iter().min().unwrap_or(0)
    }

    /// True iff all side lengths are equal.
    pub fn is_square(&self) -> bool {
        let dims = self.dims();
        dims.iter().all(|&d| d == dims[0])
    }

    /// The unique identifiers in node-index order (empty for boundary
    /// grids, whose canonical corner-coordination solution is
    /// identifier-free).
    pub fn ids(&self) -> &[u64] {
        match self {
            Instance::Torus2(inst) => inst.ids(),
            Instance::TorusD(inst) => inst.ids(),
            Instance::Boundary(_) => &[],
        }
    }

    /// The instance's adjacency as a compact CSR view — the
    /// [`Graph`]-backed face every topology shares (ports in
    /// [`Graph::for_each_neighbour`] order, directly consumable by the
    /// LOCAL-model simulator).
    pub fn adjacency(&self) -> CsrAdjacency {
        match self {
            Instance::Torus2(inst) => inst.torus().adjacency(),
            Instance::TorusD(inst) => inst.torus().adjacency(),
            Instance::Boundary(grid) => grid.graph().adjacency(),
        }
    }

    /// The 2-d grid instance, if this is one.
    pub fn as_torus2(&self) -> Option<&GridInstance> {
        match self {
            Instance::Torus2(inst) => Some(inst),
            _ => None,
        }
    }

    /// The d-dimensional torus instance, if this is one.
    pub fn as_torus_d(&self) -> Option<&TorusDInstance> {
        match self {
            Instance::TorusD(inst) => Some(inst),
            _ => None,
        }
    }

    /// The boundary grid, if this is one.
    pub fn as_boundary(&self) -> Option<&BoundaryGrid> {
        match self {
            Instance::Boundary(grid) => Some(grid),
            _ => None,
        }
    }

    /// Lowers a 2-dimensional `TorusD` instance to the equivalent
    /// `Torus2` instance (`None` for everything else). The engine applies
    /// this before dispatch so `TorusD { d: 2 }` rides the full 2-d solver
    /// plan and produces labellings byte-identical to the `Torus2`
    /// spelling. Lowering clones the identifier vector — `O(n)`, the same
    /// order as the labelling every solve allocates anyway; callers on a
    /// measured hot path should construct `Torus2` instances directly.
    pub(crate) fn lower_d2(&self) -> Option<Instance> {
        match self {
            Instance::TorusD(inst) if inst.dim() == 2 => {
                Some(Instance::Torus2(inst.to_grid_instance()))
            }
            _ => None,
        }
    }

    /// The canonical dedup identity: topology tag plus dims, with
    /// `TorusD { d: 2 }` folded onto `Torus2` (the two spellings solve
    /// identically, so they may share one batch-dedup group).
    pub(crate) fn canonical_shape(&self) -> (u8, Vec<usize>) {
        match self {
            Instance::Torus2(_) => (0, self.dims()),
            Instance::TorusD(inst) if inst.dim() == 2 => (0, self.dims()),
            Instance::TorusD(_) => (1, self.dims()),
            Instance::Boundary(_) => (2, self.dims()),
        }
    }

    /// True iff two instances are interchangeable inputs: same canonical
    /// topology and dims, and identical identifier assignments.
    pub(crate) fn same_input(&self, other: &Instance) -> bool {
        self.canonical_shape() == other.canonical_shape() && self.ids() == other.ids()
    }
}

impl From<GridInstance> for Instance {
    fn from(inst: GridInstance) -> Instance {
        Instance::Torus2(inst)
    }
}

impl From<TorusDInstance> for Instance {
    fn from(inst: TorusDInstance) -> Instance {
        Instance::TorusD(inst)
    }
}

impl From<BoundaryGrid> for Instance {
    fn from(grid: BoundaryGrid) -> Instance {
        Instance::Boundary(grid)
    }
}

impl From<Torus2> for Instance {
    fn from(torus: Torus2) -> Instance {
        Instance::torus2(torus)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.dims().iter().map(|d| d.to_string()).collect();
        write!(f, "{} {}", dims.join("x"), self.topology())
    }
}
