//! Engine health: per-solver circuit breakers and robustness counters.
//!
//! A persistently failing solver tier (panicking, erroring, or timing
//! out on every dispatch) costs every request the full failure before
//! the plan falls through to the next tier. The [`Health`] ledger gives
//! each solver name a three-state circuit breaker — `Closed` (normal),
//! `Open` (skip the tier entirely), `HalfOpen` (let one probe through) —
//! with exponential-backoff cooldowns, plus per-tier timeout/fallback
//! counters and the dedup-poison recovery counter. One `Arc<Health>` per
//! engine, shared with every [`super::PreparedProblem`] it prepares and
//! exported by `lcl-serve`'s `/metrics` and `/healthz`.
//!
//! Only *infrastructure* failures count against a breaker: panics,
//! `SolverFailed`, validation failures, and budget trips. Domain
//! verdicts — `Unsolvable`, `TorusTooSmall`, `SynthesisFailed` — are
//! correct answers, and count as successes (a half-open probe answering
//! one closes its breaker rather than wedging the probe slot).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Consecutive infrastructure failures that trip a breaker open.
pub const BREAKER_THRESHOLD: u32 = 5;

/// Cooldown after the first trip; doubles per consecutive trip.
pub const BREAKER_BASE_COOLDOWN: Duration = Duration::from_millis(100);

/// Cooldown growth cap.
pub const BREAKER_MAX_COOLDOWN: Duration = Duration::from_secs(5);

/// Breaker position, as exported by [`Health::breakers`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped: dispatches to this solver are skipped until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: exactly one probe dispatch is allowed through;
    /// its outcome closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Stable name for metrics rows.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the breaker last opened.
    opened_at: Instant,
    /// Current cooldown (exponential in consecutive trips).
    cooldown: Duration,
    /// Lifetime trips to `Open`.
    trips: u64,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: Instant::now(),
            cooldown: BREAKER_BASE_COOLDOWN,
            trips: 0,
        }
    }
}

/// Per-tier robustness counters, as exported by [`Health::tier_counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Budget trips (deadline or step quota) in this tier.
    pub timeouts: u64,
    /// Solves answered by a *later* tier after this tier timed out.
    pub fallbacks: u64,
    /// Dispatches skipped because this tier's breaker was open.
    pub breaker_skips: u64,
}

/// A snapshot row of one breaker, for `/metrics`.
#[derive(Clone, Debug)]
pub struct BreakerSnapshot {
    /// Solver name the breaker guards.
    pub solver: String,
    /// Current position (recomputed against the cooldown clock).
    pub state: BreakerState,
    /// Lifetime trips to `Open`.
    pub trips: u64,
}

/// The engine's health ledger. All methods take `&self`; locks guard
/// only brief map accesses and recover from poisoning.
#[derive(Default)]
pub struct Health {
    breakers: Mutex<HashMap<String, Breaker>>,
    tiers: Mutex<HashMap<String, TierCounters>>,
    dedup_poison_recoveries: AtomicU64,
}

impl Health {
    /// A fresh ledger: every breaker closed, every counter zero.
    pub fn new() -> Health {
        Health::default()
    }

    fn lock_breakers(&self) -> std::sync::MutexGuard<'_, HashMap<String, Breaker>> {
        self.breakers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_tiers(&self) -> std::sync::MutexGuard<'_, HashMap<String, TierCounters>> {
        self.tiers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consults the breaker before dispatching to `solver`: `true` means
    /// go ahead (and transitions `Open` → `HalfOpen` when the cooldown
    /// has elapsed, claiming the probe slot); `false` means skip the
    /// tier. An unknown solver is always allowed (breakers materialise
    /// on first failure).
    pub fn allow(&self, solver: &str) -> bool {
        let mut breakers = self.lock_breakers();
        let Some(b) = breakers.get_mut(solver) else {
            return true;
        };
        match b.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if b.opened_at.elapsed() >= b.cooldown {
                    b.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // A probe is already in flight; hold further dispatches.
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful (or domain-verdict) dispatch: closes the
    /// breaker and resets the failure streak and cooldown.
    pub fn record_success(&self, solver: &str) {
        let mut breakers = self.lock_breakers();
        if let Some(b) = breakers.get_mut(solver) {
            b.state = BreakerState::Closed;
            b.consecutive_failures = 0;
            b.cooldown = BREAKER_BASE_COOLDOWN;
        }
    }

    /// Records an infrastructure failure. A `HalfOpen` probe failure
    /// re-opens immediately with a doubled cooldown; a `Closed` streak
    /// reaching [`BREAKER_THRESHOLD`] trips the breaker open.
    pub fn record_failure(&self, solver: &str) {
        let mut breakers = self.lock_breakers();
        let b = breakers
            .entry(solver.to_string())
            .or_insert_with(Breaker::new);
        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
        match b.state {
            BreakerState::HalfOpen => {
                b.state = BreakerState::Open;
                b.opened_at = Instant::now();
                b.cooldown = (b.cooldown * 2).min(BREAKER_MAX_COOLDOWN);
                b.trips += 1;
            }
            BreakerState::Closed if b.consecutive_failures >= BREAKER_THRESHOLD => {
                b.state = BreakerState::Open;
                b.opened_at = Instant::now();
                b.trips += 1;
            }
            _ => {}
        }
    }

    /// Number of breakers currently *recovering*: `HalfOpen` (probe in
    /// flight) or `Open` still inside its cooldown — the signal
    /// `/healthz` degrades on. An `Open` breaker whose cooldown has
    /// elapsed admits a probe on the very next dispatch and is counted
    /// as recovered; otherwise a tripped tier that an earlier tier
    /// permanently shadows (its successes end the walk before the probe)
    /// would hold the service `degraded` forever.
    pub fn open_breakers(&self) -> usize {
        self.lock_breakers()
            .values()
            .filter(|b| match b.state {
                BreakerState::Closed => false,
                BreakerState::HalfOpen => true,
                BreakerState::Open => b.opened_at.elapsed() < b.cooldown,
            })
            .count()
    }

    /// A snapshot of every materialised breaker, sorted by solver name.
    pub fn breakers(&self) -> Vec<BreakerSnapshot> {
        let mut rows: Vec<BreakerSnapshot> = self
            .lock_breakers()
            .iter()
            .map(|(solver, b)| BreakerSnapshot {
                solver: solver.clone(),
                state: b.state,
                trips: b.trips,
            })
            .collect();
        rows.sort_by(|a, b| a.solver.cmp(&b.solver));
        rows
    }

    /// Lifetime trips across every breaker.
    pub fn breaker_trips(&self) -> u64 {
        self.lock_breakers().values().map(|b| b.trips).sum()
    }

    /// Counts a budget trip in `tier` (and drops an instant mark on the
    /// current trace, so timeline views show *where* the walk lost its
    /// budget).
    pub fn record_timeout(&self, tier: &str) {
        lcl_trace::mark(lcl_trace::SpanKind::Mark, "tier-timeout", [0; 4]);
        self.lock_tiers()
            .entry(tier.to_string())
            .or_default()
            .timeouts += 1;
    }

    /// Counts a solve answered by a later tier after `tier` timed out.
    pub fn record_fallback(&self, tier: &str) {
        lcl_trace::mark(lcl_trace::SpanKind::Mark, "tier-fallback", [0; 4]);
        self.lock_tiers()
            .entry(tier.to_string())
            .or_default()
            .fallbacks += 1;
    }

    /// Counts a dispatch skipped because `tier`'s breaker was open
    /// (marked on the current trace like a timeout).
    pub fn record_breaker_skip(&self, tier: &str) {
        lcl_trace::mark(lcl_trace::SpanKind::Mark, "breaker-skip", [0; 4]);
        self.lock_tiers()
            .entry(tier.to_string())
            .or_default()
            .breaker_skips += 1;
    }

    /// Every tier's counters, sorted by tier name.
    pub fn tier_counters(&self) -> Vec<(String, TierCounters)> {
        let mut rows: Vec<(String, TierCounters)> = self
            .lock_tiers()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Counts a poisoned stream-dedup entry that was detected (checksum
    /// mismatch) and transparently re-solved.
    pub fn record_dedup_poison_recovery(&self) {
        self.dedup_poison_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Poisoned dedup entries detected and recovered so far.
    pub fn dedup_poison_recoveries(&self) -> u64 {
        self.dedup_poison_recoveries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let h = Health::new();
        assert!(h.allow("sat"));
        for _ in 0..BREAKER_THRESHOLD - 1 {
            h.record_failure("sat");
            assert!(h.allow("sat"), "below threshold must stay closed");
        }
        h.record_failure("sat");
        assert!(!h.allow("sat"), "threshold reached must open");
        assert_eq!(h.open_breakers(), 1);
        assert_eq!(h.breaker_trips(), 1);
        // After the cooldown one probe is allowed; a success closes.
        std::thread::sleep(BREAKER_BASE_COOLDOWN + Duration::from_millis(20));
        assert!(h.allow("sat"), "cooldown elapsed: probe allowed");
        assert!(!h.allow("sat"), "only one probe at a time");
        h.record_success("sat");
        assert!(h.allow("sat"));
        assert_eq!(h.open_breakers(), 0);
    }

    #[test]
    fn half_open_failure_reopens_with_backoff() {
        let h = Health::new();
        for _ in 0..BREAKER_THRESHOLD {
            h.record_failure("synth");
        }
        std::thread::sleep(BREAKER_BASE_COOLDOWN + Duration::from_millis(20));
        assert!(h.allow("synth"));
        h.record_failure("synth");
        assert!(!h.allow("synth"), "failed probe re-opens");
        assert_eq!(h.breaker_trips(), 2);
        // The cooldown doubled, so the base cooldown no longer suffices.
        std::thread::sleep(BREAKER_BASE_COOLDOWN + Duration::from_millis(20));
        assert!(!h.allow("synth"), "doubled cooldown still cooling");
    }

    #[test]
    fn domain_success_resets_streak() {
        let h = Health::new();
        for _ in 0..BREAKER_THRESHOLD - 1 {
            h.record_failure("tier");
        }
        h.record_success("tier");
        for _ in 0..BREAKER_THRESHOLD - 1 {
            h.record_failure("tier");
        }
        assert!(h.allow("tier"), "streak was reset by the success");
    }

    #[test]
    fn tier_counters_accumulate() {
        let h = Health::new();
        h.record_timeout("sat-existence");
        h.record_timeout("sat-existence");
        h.record_fallback("sat-existence");
        h.record_breaker_skip("synthesised-tiles");
        let rows = h.tier_counters();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            (
                "sat-existence".to_string(),
                TierCounters {
                    timeouts: 2,
                    fallbacks: 1,
                    breaker_skips: 0
                }
            )
        );
        assert_eq!(rows[1].1.breaker_skips, 1);
    }
}
