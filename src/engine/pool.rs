//! A scoped worker pool for batch solving.
//!
//! Built on `std::thread::scope` only — the offline build environment has
//! no crate registry, so no rayon. Workers steal fixed-size chunks of
//! indices from a shared atomic cursor: the classic self-scheduling loop
//! that keeps all workers busy until the batch drains, regardless of how
//! unevenly per-instance solve times are distributed. Results land in
//! per-index slots, so input order is preserved exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Runs `job(i)` for every `i in 0..count` and returns the results in
/// index order.
///
/// With `threads <= 1` (or a trivial batch) the jobs run inline on the
/// caller's thread — byte-identical scheduling to the historical
/// sequential path. Otherwise `threads` scoped workers claim chunks from
/// a shared cursor until the range is exhausted.
///
/// `job` must not panic: batch callers wrap each solve in `catch_unwind`
/// and map panics to typed errors. If a job panics anyway, the scope
/// propagates the panic after all workers have joined.
pub(crate) fn run_indexed<T, F>(threads: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let workers = threads.min(count);
    // Chunks amortise cursor contention but stay small enough that a slow
    // chunk cannot leave workers idle at the tail of the batch.
    let chunk = (count / (workers * 4)).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= count {
                    break;
                }
                let end = (start + chunk).min(count);
                for (i, slot) in slots.iter().enumerate().take(end).skip(start) {
                    let result = job(i);
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker pool visits every index exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = run_indexed(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(4, 33, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 33);
        assert_eq!(calls.load(Ordering::Relaxed), 33);
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert_eq!(run_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(run_indexed(64, 3, |i| i), vec![0, 1, 2]);
    }
}
