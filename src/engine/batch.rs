//! The batched solve path: slices of jobs, mixed problems welcome.
//!
//! [`Engine::solve_batch`] (one prepared problem, a slice of instances)
//! and [`Engine::solve_jobs`] (a slice of mixed-problem [`Job`]s) are the
//! slice entry points: per-instance failures stay independent (one
//! unsolvable torus does not poison the batch — even a panicking solver
//! comes back as a typed [`SolveError::Panicked`]), interchangeable jobs
//! dedup so each distinct labelling is computed once, and distinct jobs
//! dispatch over the worker pool configured with
//! [`EngineBuilder::threads`](crate::engine::EngineBuilder::threads).
//! For workloads too large to materialise, use the streaming surface
//! ([`Engine::solve_stream`](crate::engine::Engine::solve_stream)).
//!
//! Dedup shares only between jobs of the *same prepared handle* (with
//! the canonical cache key namespacing the hash buckets): two problems —
//! or two differently-configured engines' handles — solving instances
//! with identical dimensions and identifiers never share a labelling.
//!
//! Determinism contract: for a fixed engine configuration, the results —
//! labels, reports, and errors alike — are identical whatever the thread
//! count, and identical with dedup on or off. The tests in
//! `tests/batch.rs` pin this down byte-for-byte.

use super::registry::fnv1a64;
use super::{pool, Engine, Instance, Labelling, PreparedProblem, SolveError};
use lcl_sat::Budget;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// One unit of batch or stream work: a prepared problem plus an instance
/// of it. Mixed-problem batches are just slices (or iterators) of jobs
/// whose `prepared` handles differ — the handles are `Arc`s, so jobs are
/// cheap to mint from a prepared plan.
#[derive(Clone, Debug)]
pub struct Job {
    /// The resolved plan to solve with.
    pub prepared: Arc<PreparedProblem>,
    /// The instance to solve.
    pub instance: Instance,
    /// Optional per-job budget (see [`Job::with_budget`]); kept private
    /// so the dedup paths below are the only arbiters of how budgeted
    /// jobs share.
    budget: Option<Budget>,
}

impl Job {
    /// Pairs a prepared problem with an instance.
    pub fn new(prepared: Arc<PreparedProblem>, instance: Instance) -> Job {
        Job {
            prepared,
            instance,
            budget: None,
        }
    }

    /// Attaches a per-job cooperative [`Budget`] that **replaces** the
    /// entry point's shared budget for this job only. This is the
    /// per-problem-timeout primitive mass pipelines need: a stream can
    /// give every job its own fresh step quota, so one pathological SAT
    /// instance gets a typed [`SolveError::DeadlineExceeded`] while its
    /// neighbours keep their full budgets.
    ///
    /// A budgeted job is never dedup-shared (neither by the in-batch
    /// grouping nor the stream dedup window): its budget is consumable
    /// state, so two jobs carrying separate budgets are not
    /// interchangeable — a quota that trips on one must not decide the
    /// other.
    pub fn with_budget(mut self, budget: Budget) -> Job {
        self.budget = Some(budget);
        self
    }

    /// The per-job budget, if one was attached via [`Job::with_budget`].
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }
}

/// Per-problem accounting of a batch: one row per distinct prepared
/// problem (by cache key), in order of first appearance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProblemBatchStats {
    /// The problem's display name.
    pub problem: String,
    /// The prepared problem's canonical cache key (the dedup namespace).
    pub cache_key: String,
    /// Jobs in the batch for this problem.
    pub jobs: usize,
    /// Jobs that solved.
    pub solved: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs answered by the in-batch labelling cache instead of a fresh
    /// solve.
    pub dedup_hits: usize,
    /// Fresh solves answered by the §7 synthesised normal form (the
    /// solver whose tables ride the registry's synthesis cache).
    pub synth_solves: usize,
}

/// The outcome of a batch solve: one result per job, in input order, plus
/// aggregate and per-problem counters.
#[derive(Debug)]
pub struct BatchReport {
    results: Vec<Result<Labelling, SolveError>>,
    dedup_hits: usize,
    threads: usize,
    per_problem: Vec<ProblemBatchStats>,
}

impl BatchReport {
    /// Per-job results, in input order.
    pub fn results(&self) -> &[Result<Labelling, SolveError>] {
        &self.results
    }

    /// Consumes the report into its per-job results.
    pub fn into_results(self) -> Vec<Result<Labelling, SolveError>> {
        self.results
    }

    /// Number of solved jobs.
    pub fn solved(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.results.len() - self.solved()
    }

    /// Jobs answered by the in-batch labelling cache instead of a fresh
    /// solve (duplicates of an earlier job in the same batch).
    pub fn dedup_hits(&self) -> usize {
        self.dedup_hits
    }

    /// Worker threads the batch actually ran with (never more than the
    /// number of jobs dispatched after dedup).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total LOCAL rounds across all solved jobs.
    pub fn total_rounds(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|l| l.report.rounds.total())
            .sum()
    }

    /// Per-problem counters, one row per distinct prepared problem in the
    /// batch, in order of first appearance.
    pub fn per_problem(&self) -> &[ProblemBatchStats] {
        &self.per_problem
    }

    /// The counters of one problem, looked up by display name or by
    /// canonical cache key. Display names may collide (two different
    /// block tables can share a free-form name); the cache key is unique
    /// per row, so ambiguous names are disambiguated by passing
    /// [`PreparedProblem::cache_key`](crate::engine::PreparedProblem::cache_key)
    /// instead.
    pub fn problem_stats(&self, problem: &str) -> Option<&ProblemBatchStats> {
        self.per_problem
            .iter()
            .find(|s| s.problem == problem || s.cache_key == problem)
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch: {} solved, {} failed, {} deduped, {} problems, {} total rounds",
            self.solved(),
            self.failed(),
            self.dedup_hits(),
            self.per_problem.len(),
            self.total_rounds()
        )
    }
}

/// A borrowed batch item: the shape both slice entry points lower to —
/// prepared problem, instance, and the optional per-job budget override.
type JobRef<'a> = (&'a PreparedProblem, &'a Instance, Option<&'a Budget>);

/// Groups a batch into equivalence classes of interchangeable jobs: same
/// prepared problem, same canonical topology, same dimensions, same
/// identifier assignment — solving is deterministic, so identical inputs
/// have identical outputs. The canonical instance form folds
/// `TorusD { d: 2 }` onto `Torus2`: the two spellings solve through the
/// same lowered plan, so they may share one group.
///
/// "Same prepared problem" means the same *handle* (pointer identity),
/// which both namespaces groups per problem — two problems over
/// instances with identical dims and ids can never collide — and keeps
/// jobs from differently-configured engines apart: two handles may share
/// a cache key yet disagree on seed, profile, budget, or validation
/// policy, so only handle identity guarantees interchangeable outputs.
/// Nothing is lost within one engine, where `prepare` memoises key-equal
/// specs onto one `Arc` (the hash still folds the cache key in, so the
/// common same-problem batch buckets exactly as before).
///
/// Returns the representative index of each group (first occurrence, in
/// input order) and, per job, the index of its group. Grouping is keyed
/// by an FNV hash of the cache key, canonical topology tag, dimensions,
/// and identifiers, but always verified against the actual jobs, so a
/// hash collision costs a comparison, never a wrong share.
fn dedup_groups(jobs: &[JobRef<'_>]) -> (Vec<usize>, Vec<usize>) {
    let mut reps: Vec<usize> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, (prepared, inst, budget)) in jobs.iter().enumerate() {
        // A job with its own budget is never interchangeable: the budget
        // is consumable state (see `Job::with_budget`), so it forms a
        // private group — and is not registered as a share target either.
        if budget.is_some() {
            let g = reps.len();
            reps.push(i);
            group_of.push(g);
            continue;
        }
        let bucket = buckets.entry(job_fingerprint(prepared, inst)).or_default();
        let group = bucket.iter().copied().find(|&g| {
            let (rep_prepared, rep_inst, _) = jobs[reps[g]];
            std::ptr::eq(rep_prepared, *prepared) && rep_inst.same_input(inst)
        });
        match group {
            Some(g) => group_of.push(g),
            None => {
                let g = reps.len();
                reps.push(i);
                bucket.push(g);
                group_of.push(g);
            }
        }
    }
    (reps, group_of)
}

/// The FNV fingerprint of a job's dedup identity: problem cache key,
/// canonical topology tag, dimensions, and identifiers. Shared by the
/// batch dedup grouping and the stream dedup window — both always verify
/// candidate matches against the actual jobs, so a fingerprint collision
/// costs a comparison, never a wrong share.
pub(crate) fn job_fingerprint(prepared: &PreparedProblem, inst: &Instance) -> u64 {
    let (tag, dims) = inst.canonical_shape();
    fnv1a64(
        prepared
            .cache_key()
            .bytes()
            // 0xff cannot occur in the UTF-8 cache key: an unambiguous
            // separator between the problem and instance halves.
            .chain([0xff, tag])
            .chain(dims.iter().flat_map(|d| (*d as u64).to_le_bytes()))
            .chain(inst.ids().iter().flat_map(|id| id.to_le_bytes())),
    )
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Solves one job under a budget, mapping a panicking solver to a typed
/// error.
pub(crate) fn solve_caught(
    prepared: &PreparedProblem,
    inst: &Instance,
    budget: &Budget,
) -> Result<Labelling, SolveError> {
    catch_unwind(AssertUnwindSafe(|| prepared.solve_with(inst, budget))).unwrap_or_else(|payload| {
        Err(SolveError::Panicked {
            detail: panic_detail(payload),
        })
    })
}

/// Aggregates the per-problem rows of a finished batch. Rows are keyed
/// by prepared-handle identity — the same criterion dedup shares by — so
/// key-equal handles from differently-configured engines report as
/// separate rows, matching the dedup accounting exactly.
fn per_problem_stats(
    jobs: &[JobRef<'_>],
    results: &[Result<Labelling, SolveError>],
    fresh: &[bool],
) -> Vec<ProblemBatchStats> {
    let mut rows: Vec<ProblemBatchStats> = Vec::new();
    let mut row_of: HashMap<*const PreparedProblem, usize> = HashMap::new();
    for (i, (prepared, _, _)) in jobs.iter().enumerate() {
        let row = *row_of
            .entry(std::ptr::from_ref(*prepared))
            .or_insert_with(|| {
                rows.push(ProblemBatchStats {
                    problem: prepared.spec().name().to_string(),
                    cache_key: prepared.cache_key().to_string(),
                    jobs: 0,
                    solved: 0,
                    failed: 0,
                    dedup_hits: 0,
                    synth_solves: 0,
                });
                rows.len() - 1
            });
        let stats = &mut rows[row];
        stats.jobs += 1;
        match &results[i] {
            Ok(labelling) => {
                stats.solved += 1;
                if fresh[i] && labelling.report.solver == super::registry::SYNTHESIS_SOLVER_NAME {
                    stats.synth_solves += 1;
                }
            }
            Err(_) => stats.failed += 1,
        }
        if !fresh[i] {
            stats.dedup_hits += 1;
        }
    }
    rows
}

impl Engine {
    /// Solves a slice of instances of one prepared problem — mixed
    /// topologies welcome: 2-d tori, d-dimensional tori, and boundary
    /// grids can share one batch.
    ///
    /// Interchangeable instances are solved once per batch (see
    /// [`EngineBuilder::dedup`](crate::engine::EngineBuilder::dedup)), and
    /// distinct instances are dispatched over the configured worker pool
    /// ([`EngineBuilder::threads`](crate::engine::EngineBuilder::threads)).
    /// Results come back in input order; per-instance failures — including
    /// solver panics — stay independent.
    pub fn solve_batch(&self, prepared: &PreparedProblem, instances: &[Instance]) -> BatchReport {
        self.solve_batch_with(prepared, instances, &Budget::unlimited())
    }

    /// [`Engine::solve_batch`] under a cooperative [`Budget`]. The budget
    /// is *joint* across the whole batch (the workers share its clock and
    /// step counter), so a batch deadline bounds the batch, not each job;
    /// jobs dispatched after the trip fail fast with the same typed
    /// error, and per-job failures stay independent as always.
    pub fn solve_batch_with(
        &self,
        prepared: &PreparedProblem,
        instances: &[Instance],
        budget: &Budget,
    ) -> BatchReport {
        let jobs: Vec<JobRef<'_>> = instances
            .iter()
            .map(|inst| (prepared, inst, None))
            .collect();
        self.run_batch(&jobs, budget)
    }

    /// Solves a slice of mixed-problem [`Job`]s with the same contract as
    /// [`Engine::solve_batch`]: input order preserved, per-job failures
    /// independent, dedup namespaced by each job's prepared problem.
    pub fn solve_jobs(&self, jobs: &[Job]) -> BatchReport {
        self.solve_jobs_with(jobs, &Budget::unlimited())
    }

    /// [`Engine::solve_jobs`] under a joint cooperative [`Budget`] (see
    /// [`Engine::solve_batch_with`]).
    pub fn solve_jobs_with(&self, jobs: &[Job], budget: &Budget) -> BatchReport {
        let refs: Vec<JobRef<'_>> = jobs
            .iter()
            .map(|job| (&*job.prepared, &job.instance, job.budget()))
            .collect();
        self.run_batch(&refs, budget)
    }

    fn run_batch(&self, jobs: &[JobRef<'_>], budget: &Budget) -> BatchReport {
        if !self.dedup_enabled() {
            let threads = self.batch_threads(jobs.len());
            let results = pool::run_indexed(threads, jobs.len(), |i| {
                solve_caught(jobs[i].0, jobs[i].1, jobs[i].2.unwrap_or(budget))
            });
            let fresh = vec![true; jobs.len()];
            let per_problem = per_problem_stats(jobs, &results, &fresh);
            return BatchReport {
                results,
                dedup_hits: 0,
                threads,
                per_problem,
            };
        }
        let (reps, group_of) = dedup_groups(jobs);
        // Size the pool to the deduped work list, so the report never
        // claims workers that had nothing to run.
        let threads = self.batch_threads(reps.len());
        let mut rep_results: Vec<Option<Result<Labelling, SolveError>>> =
            pool::run_indexed(threads, reps.len(), |g| {
                let (prepared, inst, job_budget) = jobs[reps[g]];
                solve_caught(prepared, inst, job_budget.unwrap_or(budget))
            })
            .into_iter()
            .map(Some)
            .collect();
        // Move each group's result into its last occurrence and clone only
        // for the earlier duplicates: an all-distinct batch (the common
        // case) pays zero clones.
        let mut remaining = vec![0usize; reps.len()];
        for &g in &group_of {
            remaining[g] += 1;
        }
        let fresh: Vec<bool> = group_of
            .iter()
            .enumerate()
            .map(|(i, &g)| reps[g] == i)
            .collect();
        let results: Vec<Result<Labelling, SolveError>> = group_of
            .iter()
            .map(|&g| {
                remaining[g] -= 1;
                let slot = &mut rep_results[g];
                if remaining[g] == 0 {
                    slot.take()
                } else {
                    slot.clone()
                }
                .expect("each group result is moved out exactly once")
            })
            .collect();
        let per_problem = per_problem_stats(jobs, &results, &fresh);
        BatchReport {
            results,
            dedup_hits: jobs.len() - reps.len(),
            threads,
            per_problem,
        }
    }

    /// Resolves the configured thread count for a batch of `len` items
    /// (`0` = all cores; never more workers than items).
    fn batch_threads(&self, len: usize) -> usize {
        self.worker_threads().min(len.max(1))
    }
}
