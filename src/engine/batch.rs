//! The batched solve path.
//!
//! `solve_batch` is the entry point production callers should grow into.
//! It keeps per-instance failures independent (one unsolvable torus does
//! not poison the batch — even a panicking solver comes back as a typed
//! [`SolveError::Panicked`]), shares the engine's memoised synthesis
//! across items, dedups identical instances so each distinct labelling is
//! computed once, and dispatches over the worker pool configured with
//! [`EngineBuilder::threads`](crate::engine::EngineBuilder::threads).
//!
//! Determinism contract: for a fixed engine configuration, the results —
//! labels, reports, and errors alike — are identical whatever the thread
//! count, and identical with dedup on or off. The tests in
//! `tests/batch.rs` pin this down byte-for-byte.

use super::registry::fnv1a64;
use super::{pool, Engine, Instance, Labelling, SolveError};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The outcome of [`Engine::solve_batch`]: one result per instance, in
/// input order.
#[derive(Debug)]
pub struct BatchReport {
    results: Vec<Result<Labelling, SolveError>>,
    dedup_hits: usize,
    threads: usize,
}

impl BatchReport {
    /// Per-instance results, in input order.
    pub fn results(&self) -> &[Result<Labelling, SolveError>] {
        &self.results
    }

    /// Consumes the report into its per-instance results.
    pub fn into_results(self) -> Vec<Result<Labelling, SolveError>> {
        self.results
    }

    /// Number of solved instances.
    pub fn solved(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of failed instances.
    pub fn failed(&self) -> usize {
        self.results.len() - self.solved()
    }

    /// Instances answered by the in-batch labelling cache instead of a
    /// fresh solve (duplicates of an earlier instance in the same batch).
    pub fn dedup_hits(&self) -> usize {
        self.dedup_hits
    }

    /// Worker threads the batch actually ran with (never more than the
    /// number of instances dispatched after dedup).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total LOCAL rounds across all solved instances.
    pub fn total_rounds(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|l| l.report.rounds.total())
            .sum()
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch: {} solved, {} failed, {} deduped, {} total rounds",
            self.solved(),
            self.failed(),
            self.dedup_hits(),
            self.total_rounds()
        )
    }
}

/// Groups a batch into equivalence classes of interchangeable instances
/// (same canonical topology, same dimensions, same identifier assignment
/// — solving is deterministic, so identical inputs have identical
/// outputs). The canonical form folds `TorusD { d: 2 }` onto `Torus2`:
/// the two spellings solve through the same lowered plan, so they may
/// share one group.
///
/// Returns the representative index of each group (first occurrence, in
/// input order) and, per instance, the index of its group. Grouping is
/// keyed by an FNV hash of the canonical topology tag, dimensions, and
/// identifiers, but always verified against the actual instances, so a
/// hash collision costs a comparison, never a wrong share.
fn dedup_groups(instances: &[Instance]) -> (Vec<usize>, Vec<usize>) {
    let mut reps: Vec<usize> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(instances.len());
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, inst) in instances.iter().enumerate() {
        let (tag, dims) = inst.canonical_shape();
        let key_bytes = std::iter::once(tag)
            .chain(dims.iter().flat_map(|d| (*d as u64).to_le_bytes()))
            .chain(inst.ids().iter().flat_map(|id| id.to_le_bytes()));
        let bucket = buckets.entry(fnv1a64(key_bytes)).or_default();
        let group = bucket
            .iter()
            .copied()
            .find(|&g| instances[reps[g]].same_input(inst));
        match group {
            Some(g) => group_of.push(g),
            None => {
                let g = reps.len();
                reps.push(i);
                bucket.push(g);
                group_of.push(g);
            }
        }
    }
    (reps, group_of)
}

/// Extracts a human-readable message from a panic payload.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Engine {
    /// Solves a batch of instances — mixed topologies welcome: 2-d tori,
    /// d-dimensional tori, and boundary grids can share one batch.
    ///
    /// Interchangeable instances are solved once per batch (see
    /// [`EngineBuilder::dedup`](crate::engine::EngineBuilder::dedup)), and
    /// distinct instances are dispatched over the configured worker pool
    /// ([`EngineBuilder::threads`](crate::engine::EngineBuilder::threads)).
    /// Results come back in input order; per-instance failures — including
    /// solver panics — stay independent.
    pub fn solve_batch(&self, instances: &[Instance]) -> BatchReport {
        let solve_one = |inst: &Instance| -> Result<Labelling, SolveError> {
            catch_unwind(AssertUnwindSafe(|| self.solve(inst))).unwrap_or_else(|payload| {
                Err(SolveError::Panicked {
                    detail: panic_detail(payload),
                })
            })
        };
        if !self.dedup {
            let threads = self.batch_threads(instances.len());
            let results = pool::run_indexed(threads, instances.len(), |i| solve_one(&instances[i]));
            return BatchReport {
                results,
                dedup_hits: 0,
                threads,
            };
        }
        let (reps, group_of) = dedup_groups(instances);
        // Size the pool to the deduped work list, so the report never
        // claims workers that had nothing to run.
        let threads = self.batch_threads(reps.len());
        let mut rep_results: Vec<Option<Result<Labelling, SolveError>>> =
            pool::run_indexed(threads, reps.len(), |g| solve_one(&instances[reps[g]]))
                .into_iter()
                .map(Some)
                .collect();
        // Move each group's result into its last occurrence and clone only
        // for the earlier duplicates: an all-distinct batch (the common
        // case) pays zero clones.
        let mut remaining = vec![0usize; reps.len()];
        for &g in &group_of {
            remaining[g] += 1;
        }
        let results = group_of
            .iter()
            .map(|&g| {
                remaining[g] -= 1;
                let slot = &mut rep_results[g];
                if remaining[g] == 0 {
                    slot.take()
                } else {
                    slot.clone()
                }
                .expect("each group result is moved out exactly once")
            })
            .collect();
        BatchReport {
            results,
            dedup_hits: instances.len() - reps.len(),
            threads,
        }
    }

    /// Resolves the configured thread count for a batch of `len` items
    /// (`0` = all cores; never more workers than items).
    fn batch_threads(&self, len: usize) -> usize {
        let configured = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        };
        configured.min(len.max(1))
    }
}
