//! The batched solve path.
//!
//! `solve_batch` is the entry point production callers should grow into:
//! it keeps per-instance failures independent (one unsolvable torus does
//! not poison the batch), shares the engine's memoised synthesis across
//! items, and is the seam where parallel dispatch and labelling caches
//! will land (see ROADMAP "Open items").

use super::{Engine, Labelling, SolveError};
use lcl_local::GridInstance;
use std::fmt;

/// The outcome of [`Engine::solve_batch`]: one result per instance, in
/// input order.
#[derive(Debug)]
pub struct BatchReport {
    results: Vec<Result<Labelling, SolveError>>,
}

impl BatchReport {
    /// Per-instance results, in input order.
    pub fn results(&self) -> &[Result<Labelling, SolveError>] {
        &self.results
    }

    /// Consumes the report into its per-instance results.
    pub fn into_results(self) -> Vec<Result<Labelling, SolveError>> {
        self.results
    }

    /// Number of solved instances.
    pub fn solved(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of failed instances.
    pub fn failed(&self) -> usize {
        self.results.len() - self.solved()
    }

    /// Total LOCAL rounds across all solved instances.
    pub fn total_rounds(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|l| l.report.rounds.total())
            .sum()
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch: {} solved, {} failed, {} total rounds",
            self.solved(),
            self.failed(),
            self.total_rounds()
        )
    }
}

impl Engine {
    /// Solves a batch of torus instances.
    ///
    /// Currently sequential; the expensive shared work (synthesis) is
    /// memoised in the registry, so the marginal cost per instance is the
    /// solver run itself.
    pub fn solve_batch(&self, instances: &[GridInstance]) -> BatchReport {
        BatchReport {
            results: instances.iter().map(|inst| self.solve(inst)).collect(),
        }
    }
}
