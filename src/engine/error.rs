//! The typed, panic-free failure surface of the engine.

use std::fmt;
use std::time::Duration;

/// Everything that can go wrong when preparing a problem on an
/// [`crate::engine::Engine`] or solving an instance through the prepared
/// plan.
///
/// Variants are ordered roughly by how definitive they are: an
/// [`SolveError::Unsolvable`] verdict comes from an exact SAT
/// unsatisfiability proof, while the capability errors merely say that a
/// particular solver declined the instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The problem has no valid labelling on this torus — an exact
    /// verdict, from the SAT existence solver (e.g. 2-colouring on an odd
    /// 2-d torus) or from a counting argument (edge `2d`-colouring on an
    /// odd-side d-dimensional torus, Theorem 21).
    Unsolvable {
        /// Problem name.
        problem: String,
        /// The instance's side lengths, one per dimension.
        dims: Vec<usize>,
    },
    /// The `(problem, topology)` pair is not supported: the problem has no
    /// semantics on the instance's topology, or no registered solver
    /// covers the pair (e.g. vertex colouring on a 3-dimensional torus, or
    /// corner coordination on a torus instance).
    UnsupportedTopology {
        /// Problem name.
        problem: String,
        /// The instance topology, rendered (e.g. "oriented 3-d torus").
        topology: String,
        /// What was expected or why the pair is uncovered.
        reason: String,
    },
    /// Every candidate solver rejected the instance as too small; the
    /// smallest side any of them would accept is reported.
    TorusTooSmall {
        /// Problem name.
        problem: String,
        /// Smallest side some registered solver accepts.
        min_side: usize,
        /// The instance's side.
        side: usize,
    },
    /// A solution was found, but every solver that produced one needed
    /// more LOCAL rounds than the engine's budget allows.
    RoundBudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// The cheapest round count any successful solver achieved.
        needed: u64,
    },
    /// Normal-form synthesis did not succeed within the configured `k`
    /// budget and no other solver applied. By Theorem 3 this is one-sided:
    /// the problem may be global, or the budget may be too small.
    SynthesisFailed {
        /// Problem name.
        problem: String,
        /// The largest anchor spacing tried.
        max_k: usize,
    },
    /// A solver gave up for an instance-specific reason, e.g. parameter
    /// escalation exhausted or an inconsistent anchor set.
    SolverFailed {
        /// The solver that failed.
        solver: String,
        /// What happened.
        detail: String,
    },
    /// No registered solver applies to the problem at all.
    NoSolver {
        /// Problem name.
        problem: String,
    },
    /// A solver returned a labelling that the independent topology-native
    /// checker rejected — a solver bug, reported rather than trusted.
    ValidationFailed {
        /// The offending solver.
        solver: String,
        /// The first violation, rendered by the topology's checker (a 2×2
        /// window on 2-d tori, a native-validator description elsewhere).
        violation: String,
    },
    /// A solver panicked while handling one instance. The batch path
    /// catches the unwind and reports it as this typed failure, so one
    /// panicking instance neither takes down the process nor poisons the
    /// shared caches for the rest of the batch.
    Panicked {
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// The per-call [`lcl_sat::Budget`] (deadline or step quota) tripped
    /// before any solver finished. `tier` is the first solver that timed
    /// out; when later (cheaper) tiers exist the engine tries them first
    /// and only reports this error if none succeeds, recording the
    /// fallback in the [`super::SolveReport`] otherwise. The engine,
    /// its caches, and the prepared plan stay fully reusable: a later
    /// call with a roomier budget starts from intact state.
    DeadlineExceeded {
        /// The first solver tier whose budget tripped.
        tier: String,
        /// Wall-clock time spent in the call when the budget tripped.
        elapsed: Duration,
    },
    /// The caller cancelled the request through its
    /// [`lcl_sat::CancelToken`]. Unlike a deadline, cancellation aborts
    /// immediately — no fallback tiers are tried.
    Cancelled,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Unsolvable { problem, dims } => {
                let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                write!(
                    f,
                    "{problem} has no solution on the {} torus",
                    dims.join("x")
                )
            }
            SolveError::UnsupportedTopology {
                problem,
                topology,
                reason,
            } => {
                write!(f, "{problem}: unsupported topology {topology} ({reason})")
            }
            SolveError::TorusTooSmall {
                problem,
                min_side,
                side,
            } => write!(
                f,
                "{problem}: torus side {side} is below the smallest supported side {min_side}"
            ),
            SolveError::RoundBudgetExceeded { budget, needed } => write!(
                f,
                "round budget exceeded: cheapest solution needs {needed} rounds, budget is {budget}"
            ),
            SolveError::SynthesisFailed { problem, max_k } => write!(
                f,
                "{problem}: synthesis found no normal-form algorithm up to k = {max_k}"
            ),
            SolveError::SolverFailed { solver, detail } => {
                write!(f, "solver {solver} failed: {detail}")
            }
            SolveError::NoSolver { problem } => {
                write!(f, "no registered solver applies to {problem}")
            }
            SolveError::ValidationFailed { solver, violation } => {
                write!(
                    f,
                    "solver {solver} produced an invalid labelling: {violation}"
                )
            }
            SolveError::Panicked { detail } => {
                write!(f, "solver panicked: {detail}")
            }
            SolveError::DeadlineExceeded { tier, elapsed } => {
                write!(
                    f,
                    "deadline exceeded in solver {tier} after {:.3}s",
                    elapsed.as_secs_f64()
                )
            }
            SolveError::Cancelled => write!(f, "request cancelled"),
        }
    }
}

impl std::error::Error for SolveError {}
