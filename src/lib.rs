//! # lcl-grids
//!
//! A from-scratch Rust reproduction of *"LCL problems on grids"* (Brandt,
//! Hirvonen, Korhonen, Lempiäinen, Östergård, Purcell, Rybicki, Suomela,
//! Uznański — PODC 2017, arXiv:1702.05456).
//!
//! # The engine: one way in
//!
//! The paper's central message is that every radius-1 LCL on oriented
//! grids reduces to one normal form (sets of allowed 2×2 blocks) and one
//! complexity landscape (`O(1)`, `Θ(log* n)`, `Θ(n)`) — in every
//! dimension; the [`engine`] module gives this repository the matching
//! API. Describe the problem as a [`engine::ProblemSpec`], wrap the input
//! as an [`engine::Instance`] — one currency over 2-d tori, d-dimensional
//! tori, and boundary grids — build an [`engine::Engine`], and solve. The
//! engine's [`engine::Registry`] resolves each `(problem, topology)` pair
//! to the best available solver family (hand-built §8/§10 constructions,
//! §7 normal-form synthesis with memoised SAT calls, the d-dimensional
//! Theorem 21 constructions, corner coordination, or the exact `Θ(n)` SAT
//! existence baseline) and re-validates every labelling with the
//! topology-native independent checker:
//!
//! ```
//! use lcl_grids::engine::{Engine, Instance, ProblemSpec};
//! use lcl_grids::local::IdAssignment;
//!
//! // Proper vertex 5-colouring: Θ(log* n), synthesis finds the algorithm.
//! let engine = Engine::builder()
//!     .problem(ProblemSpec::vertex_colouring(5))
//!     .max_synthesis_k(2)
//!     .build()
//!     .unwrap();
//!
//! let inst = Instance::square(16, &IdAssignment::Shuffled { seed: 1 });
//! let labelling = engine.solve(&inst).unwrap();
//! assert!(labelling.report.validated);
//!
//! // Failures are typed values, not panics:
//! use lcl_grids::engine::SolveError;
//! let odd = Engine::builder()
//!     .problem(ProblemSpec::vertex_colouring(2))
//!     .max_synthesis_k(1)
//!     .build()
//!     .unwrap();
//! let err = odd.solve(&Instance::square(5, &IdAssignment::Sequential));
//! assert!(matches!(err, Err(SolveError::Unsolvable { .. })));
//!
//! // Topology is a dispatch dimension, not a dead end: the same problem
//! // spec solves on a 3-dimensional torus through the registered
//! // Theorem 21 construction, and unsupported pairs are typed errors.
//! let edge6 = Engine::builder()
//!     .problem(ProblemSpec::edge_colouring(6))
//!     .max_synthesis_k(1)
//!     .build()
//!     .unwrap();
//! let cube = Instance::torus_d(3, 4, &IdAssignment::Sequential);
//! assert!(edge6.solve(&cube).is_ok());
//! assert!(matches!(
//!     odd.solve(&cube),
//!     Err(SolveError::UnsupportedTopology { .. })
//! ));
//! ```
//!
//! Batch workloads go through [`engine::Engine::solve_batch`], which
//! amortises synthesis across instances (mixed-topology batches dedup
//! and cache correctly — cache keys carry a topology tag); round budgets
//! ([`engine::EngineBuilder::rounds_budget`]) make the engine refuse
//! solutions that are asymptotically too slow for the caller.
//!
//! # Problems as data: `lcl-lang`
//!
//! Problems need not be baked into the binary: the [`lang`] crate defines
//! a small textual format for LCLs (named alphabets, window constraints
//! at any radius, node-set and edge-set sugar) and a normalizing compiler
//! to the radius-1 block normal form. [`engine::ProblemSpec::compile`]
//! turns source text into a first-class spec that rides the same
//! registry tiers, classification, batching, and synthesis cache as the
//! built-in library:
//!
//! ```
//! use lcl_grids::engine::{Engine, Instance, ProblemSpec};
//! use lcl_grids::local::IdAssignment;
//!
//! let spec = ProblemSpec::compile(
//!     "problem vertex-5-colouring { alphabet { a, b, c, d, e } edges differ }",
//! )
//! .unwrap();
//! let engine = Engine::builder()
//!     .problem(spec)
//!     .max_synthesis_k(2)
//!     .build()
//!     .unwrap();
//! let inst = Instance::square(16, &IdAssignment::Shuffled { seed: 3 });
//! assert!(engine.solve(&inst).unwrap().report.validated);
//! ```
//!
//! # The layers underneath
//!
//! * [`grid`] — toroidal grid topologies, metrics, powers, Voronoi tilings.
//! * [`local`] — the LOCAL model: identifiers, views, round accounting, and
//!   a synchronous message-passing simulator.
//! * [`sat`] — a CDCL SAT solver used by the synthesis pipeline.
//! * [`symmetry`] — Cole–Vishkin, Linial colour reduction, and maximal
//!   independent sets on grid powers (the problem-independent `S_k`).
//! * [`turing`] — Turing machines for the undecidability construction.
//! * [`core`] — the LCL formalism, cycle classification (§4), the speed-up
//!   normal form (§5), algorithm synthesis (§7, App. A.1), and the
//!   `L_M` construction (§6).
//! * [`lang`] — the `lcl-lang` problem-definition language: lexer, parser,
//!   typed AST, and the normalizing compiler to block normal form.
//! * [`algorithms`] — concrete distributed algorithms: 4-colouring (§8),
//!   (2d+1)-edge-colouring (§10), orientations (§11), corner coordination
//!   (App. A.3).
//! * [`lowerbounds`] — q-sum coordination (§9), row invariants for
//!   3-colouring and {0,3,4}-orientations, parity impossibilities.
//!
//! The domain crates stay importable for research workflows (cycle
//! classification, the speed-up transformation, invariant experiments);
//! for *solving grid LCLs*, the engine is the documented way in. See
//! DESIGN.md for the architecture and the solver escalation scheme.

pub mod engine;

pub use engine::{Engine, Instance, Labelling, ProblemSpec, Registry, Solve, SolveError, Topology};

pub use lcl_algorithms as algorithms;
pub use lcl_core as core;
pub use lcl_grid as grid;
pub use lcl_lang as lang;
pub use lcl_local as local;
pub use lcl_lowerbounds as lowerbounds;
pub use lcl_sat as sat;
pub use lcl_symmetry as symmetry;
pub use lcl_turing as turing;
