//! # lcl-grids
//!
//! A from-scratch Rust reproduction of *"LCL problems on grids"* (Brandt,
//! Hirvonen, Korhonen, Lempiäinen, Östergård, Purcell, Rybicki, Suomela,
//! Uznański — PODC 2017, arXiv:1702.05456).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`grid`] — toroidal grid topologies, metrics, powers, Voronoi tilings.
//! * [`local`] — the LOCAL model: identifiers, views, round accounting, and
//!   a synchronous message-passing simulator.
//! * [`sat`] — a CDCL SAT solver used by the synthesis pipeline.
//! * [`symmetry`] — Cole–Vishkin, Linial colour reduction, and maximal
//!   independent sets on grid powers (the problem-independent `S_k`).
//! * [`turing`] — Turing machines for the undecidability construction.
//! * [`core`] — the LCL formalism, cycle classification (§4), the speed-up
//!   normal form (§5), algorithm synthesis (§7, App. A.1), and the
//!   `L_M` construction (§6).
//! * [`algorithms`] — concrete distributed algorithms: 4-colouring (§8),
//!   (2d+1)-edge-colouring (§10), orientations (§11), corner coordination
//!   (App. A.3).
//! * [`lowerbounds`] — q-sum coordination (§9), row invariants for
//!   3-colouring and {0,3,4}-orientations, parity impossibilities.
//!
//! # Quickstart
//!
//! ```
//! use lcl_grids::core::problems;
//! use lcl_grids::core::synthesis::{synthesize, SynthesisConfig};
//!
//! // Synthesise an optimal O(log* n) algorithm for 4-colouring (§7):
//! let problem = problems::vertex_colouring(4);
//! let algo = synthesize(&problem, &SynthesisConfig::for_k(3)).expect("k=3 succeeds");
//! assert_eq!(algo.k(), 3);
//! ```

pub use lcl_algorithms as algorithms;
pub use lcl_core as core;
pub use lcl_grid as grid;
pub use lcl_local as local;
pub use lcl_lowerbounds as lowerbounds;
pub use lcl_sat as sat;
pub use lcl_symmetry as symmetry;
pub use lcl_turing as turing;
