//! # lcl-grids
//!
//! A from-scratch Rust reproduction of *"LCL problems on grids"* (Brandt,
//! Hirvonen, Korhonen, Lempiäinen, Östergård, Purcell, Rybicki, Suomela,
//! Uznański — PODC 2017, arXiv:1702.05456).
//!
//! # The engine: one shared service, many problems
//!
//! The paper's central message is that every radius-1 LCL on oriented
//! grids reduces to one normal form (sets of allowed 2×2 blocks) and one
//! complexity landscape (`O(1)`, `Θ(log* n)`, `Θ(n)`) — in every
//! dimension; the [`engine`] module gives this repository the matching
//! API. One problem-agnostic [`engine::Engine`] — `Send + Sync`, holding
//! the [`engine::Registry`], worker pool, and dedup/synthesis/plan
//! caches — serves every problem a process handles.
//! [`engine::Engine::prepare`] resolves a [`engine::ProblemSpec`]'s
//! solver plan once (hand-built §8/§10 constructions, §7 normal-form
//! synthesis with memoised SAT calls, the d-dimensional Theorem 21
//! constructions, corner coordination, or the exact `Θ(n)` SAT existence
//! baseline) into an immutable [`engine::PreparedProblem`] handle; every
//! labelling is re-validated with the topology-native independent
//! checker:
//!
//! ```
//! use lcl_grids::engine::{Engine, Instance, ProblemSpec};
//! use lcl_grids::local::IdAssignment;
//!
//! // One engine for the whole process.
//! let engine = Engine::builder().max_synthesis_k(2).build();
//!
//! // Proper vertex 5-colouring: Θ(log* n), synthesis finds the algorithm.
//! let five = engine.prepare(&ProblemSpec::vertex_colouring(5)).unwrap();
//! let inst = Instance::square(16, &IdAssignment::Shuffled { seed: 1 });
//! let labelling = five.solve(&inst).unwrap();
//! assert!(labelling.report.validated);
//!
//! // Failures are typed values, not panics:
//! use lcl_grids::engine::SolveError;
//! let two = engine.prepare(&ProblemSpec::vertex_colouring(2)).unwrap();
//! let err = two.solve(&Instance::square(5, &IdAssignment::Sequential));
//! assert!(matches!(err, Err(SolveError::Unsolvable { .. })));
//!
//! // Topology is a dispatch dimension, not a dead end: the same engine
//! // solves on a 3-dimensional torus through the registered Theorem 21
//! // construction, and unsupported pairs are typed errors.
//! let cube = Instance::torus_d(3, 4, &IdAssignment::Sequential);
//! let edge6 = ProblemSpec::edge_colouring(6);
//! assert!(engine.solve(&edge6, &cube).is_ok());
//! assert!(matches!(
//!     two.solve(&cube),
//!     Err(SolveError::UnsupportedTopology { .. })
//! ));
//! ```
//!
//! Batch workloads go through [`engine::Engine::solve_batch`] /
//! [`engine::Engine::solve_jobs`] (slices, in-batch dedup namespaced per
//! problem, ordered results) or the streaming
//! [`engine::Engine::solve_stream`] (an iterator of mixed-problem
//! [`engine::Job`]s drained through a bounded channel in `O(threads)`
//! memory); round budgets ([`engine::EngineBuilder::rounds_budget`]) make
//! the engine refuse solutions that are asymptotically too slow for the
//! caller.
//!
//! # Problems as data: `lcl-lang`
//!
//! Problems need not be baked into the binary: the [`lang`] crate defines
//! a small textual format for LCLs (named alphabets, window constraints
//! at any radius, node-set and edge-set sugar) and a normalizing compiler
//! to the radius-1 block normal form. [`engine::ProblemSpec::compile`]
//! turns source text into a first-class spec that rides the same
//! registry tiers, classification, batching, and synthesis cache as the
//! built-in library:
//!
//! ```
//! use lcl_grids::engine::{Engine, Instance, ProblemSpec};
//! use lcl_grids::local::IdAssignment;
//!
//! let spec = ProblemSpec::compile(
//!     "problem vertex-5-colouring { alphabet { a, b, c, d, e } edges differ }",
//! )
//! .unwrap();
//! let engine = Engine::builder().max_synthesis_k(2).build();
//! let inst = Instance::square(16, &IdAssignment::Shuffled { seed: 3 });
//! assert!(engine.solve(&spec, &inst).unwrap().report.validated);
//! ```
//!
//! # The layers underneath
//!
//! * [`grid`] — toroidal grid topologies, metrics, powers, Voronoi tilings.
//! * [`local`] — the LOCAL model: identifiers, views, round accounting, and
//!   a synchronous message-passing simulator.
//! * [`sat`] — a CDCL SAT solver used by the synthesis pipeline.
//! * [`symmetry`] — Cole–Vishkin, Linial colour reduction, and maximal
//!   independent sets on grid powers (the problem-independent `S_k`).
//! * [`turing`] — Turing machines for the undecidability construction.
//! * [`core`] — the LCL formalism, cycle classification (§4), the speed-up
//!   normal form (§5), algorithm synthesis (§7, App. A.1), and the
//!   `L_M` construction (§6).
//! * [`lang`] — the `lcl-lang` problem-definition language: lexer, parser,
//!   typed AST, and the normalizing compiler to block normal form.
//! * [`algorithms`] — concrete distributed algorithms: 4-colouring (§8),
//!   (2d+1)-edge-colouring (§10), orientations (§11), corner coordination
//!   (App. A.3).
//! * [`lowerbounds`] — q-sum coordination (§9), row invariants for
//!   3-colouring and {0,3,4}-orientations, parity impossibilities.
//!
//! The domain crates stay importable for research workflows (cycle
//! classification, the speed-up transformation, invariant experiments);
//! for *solving grid LCLs*, the engine is the documented way in. See
//! DESIGN.md for the architecture and the solver escalation scheme.

#![forbid(unsafe_code)]
pub mod engine;

pub use engine::{
    Engine, Instance, Job, Labelling, PreparedProblem, ProblemSpec, Registry, Solve, SolveError,
    Topology,
};

pub use lcl_algorithms as algorithms;
pub use lcl_analyze as analyze;
pub use lcl_core as core;
pub use lcl_grid as grid;
pub use lcl_lang as lang;
pub use lcl_local as local;
pub use lcl_lowerbounds as lowerbounds;
pub use lcl_sat as sat;
pub use lcl_symmetry as symmetry;
pub use lcl_turing as turing;
